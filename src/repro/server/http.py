"""The HTTP front end: wire protocol v2 over REST, stdlib only.

FaiRank is presented as an *interactive system*: auditors, end users and job
owners query it live.  :class:`FairnessHTTPServer` is that serving surface —
a :class:`http.server.ThreadingHTTPServer` (one thread per connection, no
third-party dependencies) exposing one POST endpoint per protocol-v2 request
kind plus batch execution and three read-only GETs:

================  ======  ====================================================
endpoint          method  body / response
================  ======  ====================================================
``/v2/quantify``  POST    a :class:`~repro.service.jobs.QuantifyRequest` JSON
``/v2/audit``     POST    an :class:`~repro.service.jobs.AuditRequest` JSON
``/v2/compare``   POST    a :class:`~repro.service.jobs.CompareRequest` JSON
``/v2/breakdown`` POST    a :class:`~repro.service.jobs.BreakdownRequest` JSON
``/v2/sweep``     POST    a :class:`~repro.service.jobs.SweepRequest` JSON
``/v2/end_user``  POST    an :class:`~repro.service.jobs.EndUserRequest` JSON
``/v2/job_owner`` POST    a :class:`~repro.service.jobs.JobOwnerRequest` JSON
``/v2/batch``     POST    ``{"requests": [...]}`` through the batch executor
``/v2/catalog``   GET     the catalogue listing (``Catalog.describe()``)
``/v2/health``    GET     liveness + cache / store-pool / uptime statistics
``/v2/metrics``   GET     the process metrics registry as Prometheus text
================  ======  ====================================================

Every POST body travels through the same :func:`~repro.service.jobs.request_from_json`
envelopes the batch files and the in-process client use (the ``kind`` field
may be omitted — the path supplies it), and every response is a
:meth:`~repro.service.jobs.ServiceResult.to_json` envelope, so HTTP, batch
and in-process traffic are byte-comparable and share one
:class:`~repro.service.service.FairnessService` — same cache, same score
stores, same catalogue.

Status mapping: ``200`` for a served request; ``400`` for a body that does
not parse into a request; ``404`` for an unknown endpoint or a ``catalog``
error envelope; ``422`` for any other execution error envelope (the
structured ``{"code", "message"}`` payload still travels in the body);
``405`` for a method an endpoint does not speak.  ``/v2/batch`` always
answers ``200`` with one envelope per slot — per-request failures are
in-slot, exactly like ``serve-batch``.

Observability (:mod:`repro.obs`): every request runs under a trace —
inherited from the ``X-Fairank-Trace`` request header or freshly generated —
whose id is echoed in the response header and in the envelope's ``timings``
field; each response increments ``<prefix>_requests_total`` and lands in
``<prefix>_request_seconds``, and a structured JSON log event is emitted
when ``verbose`` is on or the request breached ``slow_ms``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import FaiRankError, ServiceError
from repro.obs.log import ObsLogger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import TRACE_HEADER, Trace, activate, valid_trace_id
from repro.service.executor import BatchExecutor
from repro.service.jobs import PROTOCOL_VERSION, ServiceResult, request_from_json
from repro.service.service import FairnessService, _error_code

__all__ = ["FairnessHTTPServer", "REQUEST_ENDPOINTS", "V2ServerBase"]

#: The request kinds served as ``POST /v2/<kind>`` (one endpoint per kind).
REQUEST_ENDPOINTS: Tuple[str, ...] = (
    "quantify",
    "audit",
    "compare",
    "breakdown",
    "sweep",
    "end_user",
    "job_owner",
)

#: HTTP status for an execution error envelope, by error code.
_STATUS_BY_ERROR_CODE = {"catalog": 404}
_DEFAULT_ERROR_STATUS = 422

#: Prometheus text exposition content type (``/v2/metrics``).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Endpoint label values for the HTTP metrics; unknown paths collapse to
#: "other" so random 404 traffic cannot explode the label cardinality.
_KNOWN_PATHS = frozenset(
    {"/v2/health", "/v2/catalog", "/v2/metrics", "/v2/batch"}
    | {f"/v2/{kind}" for kind in REQUEST_ENDPOINTS}
)


def _transport_error(code: str, message: str) -> Dict[str, object]:
    """A bodyless-failure payload (same shape as an envelope's ``error``)."""
    return {"error": {"code": code, "message": message}}


class _JSONRequestHandler(BaseHTTPRequestHandler):
    """Shared plumbing for JSON-speaking v2 handlers.

    Both the single-process server below and the shard router
    (:mod:`repro.shard.router`) subclass this: keep-alive-safe body
    draining, JSON responses, request dispatch with trace activation,
    per-server request counting/metrics and structured logging live here so
    the two serving surfaces cannot drift apart.  Subclasses implement the
    three surface-specific hooks (:meth:`_serve_catalog`,
    :meth:`_serve_kind`, :meth:`_serve_batch`).
    """

    protocol_version = "HTTP/1.1"
    # Bound idle keep-alive connections: without a socket timeout a client
    # that holds its connection open would block the drain on shutdown
    # (server_close joins in-flight handler threads) indefinitely.
    timeout = 30.0

    server: "V2ServerBase"

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:
        """Silence the stdlib's stderr lines (structured logging replaces them)."""

    def _send_json(self, status: int, payload: Dict[str, object]) -> None:
        self._send_raw(
            status, json.dumps(payload).encode("utf-8"),
            "application/json; charset=utf-8",
        )

    def _send_raw(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace = getattr(self, "_trace", None)
        if trace is not None:
            self.send_header(TRACE_HEADER, trace.trace_id)
        self.end_headers()
        self.wfile.write(body)
        self._status = status
        self.server._count_request()

    def _drain_body(self) -> bytes:
        """Read the request body off the socket.

        Connections are keep-alive (HTTP/1.1), so the body must be consumed
        on *every* response path — including 404/405 rejections — or the
        unread bytes would be parsed as the next request line on the same
        connection.  When the length is unknowable the connection is closed
        instead.
        """
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            self.close_connection = True
            raise ServiceError("invalid Content-Length header") from None
        if length == 0 and self.headers.get("Transfer-Encoding"):
            # Chunked bodies have no Content-Length; this server does not
            # decode them, so the connection cannot be reused safely.
            self.close_connection = True
            raise ServiceError(
                "chunked request bodies are not supported; send Content-Length"
            )
        return self.rfile.read(length) if length > 0 else b""

    def _read_json_body(self, raw: bytes) -> object:
        """The parsed JSON request body (raises ServiceError for bad input)."""
        if not raw:
            raise ServiceError("request body is empty; expected a JSON object")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise ServiceError(f"request body is not valid JSON: {error}") from None

    # -- dispatch --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler naming
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        """Route one request under a fresh (or header-inherited) trace.

        A keep-alive connection reuses one handler thread for many requests,
        so the trace is activated per dispatch (contextvar token reset on the
        way out) — never stored on the thread.
        """
        started = time.perf_counter()
        self._status: Optional[int] = None
        trace = Trace(valid_trace_id(self.headers.get(TRACE_HEADER)))
        self._trace = trace
        path = urlsplit(self.path).path.rstrip("/")
        with activate(trace):
            try:
                raw = self._drain_body()  # always, even on 404/405 (keep-alive)
            except ServiceError as error:
                self._send_json(400, _transport_error(_error_code(error), str(error)))
            else:
                try:
                    if method == "GET":
                        self._handle_get(path)
                    else:
                        self._handle_post(path, raw)
                except ServiceError as error:
                    self._send_json(
                        400, _transport_error(_error_code(error), str(error))
                    )
                except Exception as error:  # pragma: no cover - defensive 500
                    self._send_json(500, _transport_error("internal", str(error)))
        self.server._observe_http(
            method=method,
            path=path,
            status=self._status if self._status is not None else 0,
            duration_s=time.perf_counter() - started,
            trace=trace,
        )

    def _handle_get(self, path: str) -> None:
        if path == "/v2/health":
            self._send_json(200, self.server.health())
            return
        if path == "/v2/metrics":
            self._send_raw(
                200, self.server.metrics_text().encode("utf-8"), METRICS_CONTENT_TYPE
            )
            return
        if path == "/v2/catalog":
            self._serve_catalog()
            return
        if path == "/v2/batch" or path.removeprefix("/v2/") in REQUEST_ENDPOINTS:
            self._send_json(
                405, _transport_error("method", f"{path} only accepts POST")
            )
            return
        self._send_json(
            404, _transport_error("not_found", f"unknown endpoint {path!r}")
        )

    def _handle_post(self, path: str, raw: bytes) -> None:
        if path in ("/v2/health", "/v2/catalog", "/v2/metrics"):
            self._send_json(
                405, _transport_error("method", f"{path} only accepts GET")
            )
            return
        if path == "/v2/batch":
            self._serve_batch(raw)
            return
        kind = path.removeprefix("/v2/")
        if path.startswith("/v2/") and kind in REQUEST_ENDPOINTS:
            self._serve_kind(kind, path, raw)
            return
        self._send_json(
            404, _transport_error("not_found", f"unknown endpoint {path!r}")
        )

    # -- surface hooks ---------------------------------------------------------

    def _serve_catalog(self) -> None:
        raise NotImplementedError  # pragma: no cover - subclasses implement

    def _serve_kind(self, kind: str, path: str, raw: bytes) -> None:
        raise NotImplementedError  # pragma: no cover - subclasses implement

    def _serve_batch(self, raw: bytes) -> None:
        raise NotImplementedError  # pragma: no cover - subclasses implement


class _Handler(_JSONRequestHandler):
    """Routes v2 endpoints onto the server's shared FairnessService."""

    server: "FairnessHTTPServer"

    def _serve_catalog(self) -> None:
        self._send_json(200, self.server.service.catalog.describe())

    def _parse_request(self, payload: object, kind: Optional[str] = None):
        """Build a service request from a JSON body (path kind wins over body)."""
        if not isinstance(payload, dict):
            raise ServiceError("a request payload must be a JSON object")
        envelope = dict(payload)
        if kind is not None:
            declared = envelope.get("kind")
            if declared is not None and declared != kind:
                raise ServiceError(
                    f"request body declares kind {declared!r} but was POSTed "
                    f"to /v2/{kind}"
                )
            envelope["kind"] = kind
        envelope.setdefault("protocol", PROTOCOL_VERSION)
        return request_from_json(envelope)

    def _serve_kind(self, kind: str, path: str, raw: bytes) -> None:
        request = self._parse_request(self._read_json_body(raw), kind)
        result = self.server.service.execute(request)
        if result.ok:
            self._send_json(200, result.to_json())
            return
        code = str(result.error.get("code", "error"))
        status = _STATUS_BY_ERROR_CODE.get(code, _DEFAULT_ERROR_STATUS)
        self._send_json(status, result.to_json())

    def _serve_batch(self, raw: bytes) -> None:
        document = self._read_json_body(raw)
        entries = document.get("requests") if isinstance(document, dict) else document
        if not isinstance(entries, list) or not entries:
            raise ServiceError(
                "a batch body must be a non-empty list of request objects "
                "(either top-level or under a 'requests' key)"
            )
        # A slot whose entry does not even parse gets an error envelope in
        # place, mirroring the executor's in-slot semantics for bad requests.
        parsed = []
        envelopes: Dict[int, ServiceResult] = {}
        for index, entry in enumerate(entries):
            try:
                parsed.append((index, self._parse_request(entry)))
            except FaiRankError as error:
                kind = entry.get("kind") if isinstance(entry, dict) else None
                envelopes[index] = ServiceResult(
                    kind=str(kind) if kind else "unknown",
                    key="",
                    error={"code": _error_code(error), "message": str(error)},
                )
        results = self.server.executor.run([request for _, request in parsed])
        for (index, _), result in zip(parsed, results):
            envelopes[index] = result
        self._send_json(
            200,
            {
                "protocol": PROTOCOL_VERSION,
                "results": [envelopes[i].to_json() for i in range(len(entries))],
            },
        )


class V2ServerBase(ThreadingHTTPServer):
    """Shared lifecycle + serving statistics for the v2 serving surfaces.

    Both :class:`FairnessHTTPServer` and the shard router
    (:class:`repro.shard.router.ShardRouter`) are this server: bind with a
    :class:`~repro.errors.ServiceError` on failure, count served requests,
    serve ``/v2/metrics``, record HTTP metrics and structured request logs,
    and expose the same drain-on-close, background-serving and context-
    manager semantics — one place to fix means both surfaces get the fix.
    """

    # Non-daemon handler threads + block_on_close means ``server_close()``
    # *drains*: it joins every in-flight handler before returning, so a
    # SIGTERM'd ``fairank serve`` (or a restarting shard worker) never cuts a
    # response short.  The handler's socket timeout bounds how long an idle
    # keep-alive connection can hold the drain up.
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True
    # The default listen backlog (5) drops connections under a concurrent
    # burst; size it for benchmark/batch-style waves of simultaneous clients.
    request_queue_size = 128

    #: Name of the background serving thread (subclasses override).
    thread_name = "fairank-v2"

    #: Metric family prefix for this surface's HTTP metrics (the router
    #: overrides it so router ingress and worker metrics never collide when
    #: per-worker scrapes are aggregated).
    metrics_prefix = "fairank_http"

    def __init__(self, host: str, port: int, handler_class) -> None:
        try:
            super().__init__((host, port), handler_class)
        except OSError as error:
            raise ServiceError(f"cannot bind {host}:{port}: {error}") from None
        self._started = time.monotonic()
        self._requests_served = 0
        self._stats_lock = threading.Lock()
        self._serving = False
        self.verbose = False
        self.slow_ms: Optional[float] = None
        self.obs = ObsLogger()

    def configure_observability(
        self, *, verbose: bool = False, slow_ms: Optional[float] = None
    ) -> None:
        """Set request-log gating (every request vs slow requests only)."""
        self.verbose = verbose
        self.slow_ms = slow_ms
        self.obs = ObsLogger(verbose=verbose, slow_ms=slow_ms)

    # -- introspection ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        """The actual bound port (resolves ``port=0`` ephemeral binds)."""
        return self.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def uptime_s(self) -> float:
        return round(time.monotonic() - self._started, 3)

    def _count_request(self) -> None:
        with self._stats_lock:
            self._requests_served += 1

    @property
    def requests_served(self) -> int:
        with self._stats_lock:
            return self._requests_served

    # -- observability ---------------------------------------------------------

    def _observe_http(
        self, *, method: str, path: str, status: int, duration_s: float, trace: Trace
    ) -> None:
        """Record one served HTTP exchange (metrics + structured log)."""
        endpoint = path if path in _KNOWN_PATHS else "other"
        registry = get_registry()
        registry.counter(
            f"{self.metrics_prefix}_requests_total",
            "HTTP requests served by endpoint, method and status",
        ).inc(endpoint=endpoint, method=method, status=str(status))
        registry.histogram(
            f"{self.metrics_prefix}_request_seconds",
            "HTTP request latency by endpoint",
        ).observe(duration_s, endpoint=endpoint)
        self.obs.request(
            "http_request",
            duration_s * 1000.0,
            trace_id=trace.trace_id,
            method=method,
            path=path,
            status=status,
        )

    def _refresh_gauges(self, registry: MetricsRegistry) -> None:
        """Update point-in-time gauges right before a scrape."""
        registry.gauge(
            f"{self.metrics_prefix}_uptime_seconds", "Server uptime"
        ).set(self.uptime_s)

    def metrics_text(self) -> str:
        """The ``/v2/metrics`` page: the process registry as Prometheus text."""
        registry = get_registry()
        self._refresh_gauges(registry)
        return registry.render()

    # -- lifecycle -------------------------------------------------------------

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        super().serve_forever(poll_interval)

    def serve_in_background(self, name: Optional[str] = None) -> threading.Thread:
        """Start ``serve_forever`` on a daemon thread (tests and benchmarks)."""
        # Flagged here too: __exit__ may run before the thread is scheduled,
        # and BaseServer.shutdown() deadlocks unless serve_forever runs.
        self._serving = True
        thread = threading.Thread(
            target=self.serve_forever, name=name or self.thread_name, daemon=True
        )
        thread.start()
        return thread

    def __enter__(self):
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._serving:
            self.shutdown()
        self.server_close()


class FairnessHTTPServer(V2ServerBase):
    """A threaded HTTP server over one shared :class:`FairnessService`.

    Parameters
    ----------
    service:
        The service every endpoint executes against (and whose catalogue
        ``/v2/catalog`` lists).  Boot one from a snapshot via
        ``FairnessService(catalog=Catalog.load(path))``.
    host / port:
        Bind address; ``port=0`` picks a free ephemeral port (see ``.port``).
    max_workers:
        Thread-pool width of the ``/v2/batch`` executor (HTTP concurrency
        itself is one thread per connection, unbounded).
    verbose:
        Emit a structured JSON log event for every request (stderr).
    slow_ms:
        Emit the structured event (marked ``"slow": true``) for any request
        at or above this many milliseconds, even without ``verbose``.
    """

    thread_name = "fairank-http"

    def __init__(
        self,
        service: FairnessService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_workers: Optional[int] = None,
        verbose: bool = False,
        slow_ms: Optional[float] = None,
    ) -> None:
        super().__init__(host, port, _Handler)
        self.service = service
        self.executor = BatchExecutor(service, max_workers=max_workers)
        self.configure_observability(verbose=verbose, slow_ms=slow_ms)

    def _refresh_gauges(self, registry: MetricsRegistry) -> None:
        """Cache and store-pool statistics, exported at scrape time."""
        super()._refresh_gauges(registry)
        cache_stats = registry.gauge(
            "fairank_cache_stats", "Result cache statistics snapshot"
        )
        for name, value in self.service.cache_stats.as_dict().items():
            if isinstance(value, (int, float)):
                cache_stats.set(float(value), stat=name)
        pool_stats = registry.gauge(
            "fairank_store_pool_stats", "Score-store pool statistics snapshot"
        )
        for name, value in self.service.store_stats.as_dict().items():
            if isinstance(value, (int, float)):
                pool_stats.set(float(value), stat=name)

    def health(self) -> Dict[str, object]:
        """The ``/v2/health`` payload: liveness plus serving statistics."""
        return {
            "status": "ok",
            "protocol": PROTOCOL_VERSION,
            "uptime_s": self.uptime_s,
            "requests_served": self.requests_served,
            "endpoints": list(REQUEST_ENDPOINTS)
            + ["batch", "catalog", "health", "metrics"],
            "cache": self.service.cache_stats.as_dict(),
            "store_pool": self.service.store_stats.as_dict(),
            "catalog": self.service.catalog.describe()["counts"],
        }


def _batch_results_from_json(payload: Dict[str, object]) -> List[ServiceResult]:
    """Decode a ``/v2/batch`` response body (shared with the HTTP client)."""
    results = payload.get("results")
    if not isinstance(results, list):
        raise ServiceError("batch response carries no 'results' list")
    return [ServiceResult.from_json(entry) for entry in results]
