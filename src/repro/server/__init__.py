"""HTTP serving surface: wire protocol v2 over REST, stdlib only.

:class:`~repro.server.http.FairnessHTTPServer` exposes one POST endpoint per
request kind (plus ``/v2/batch``, ``/v2/catalog``, ``/v2/health``) over a
shared :class:`~repro.service.service.FairnessService`;
:class:`~repro.server.client.HTTPFairnessClient` is the transport-matching
client with the exact method surface of the in-process
:class:`~repro.service.client.FairnessClient`.  ``fairank serve`` is the CLI
entry point (optionally booting from a catalog snapshot).
"""

from repro.server.client import HTTPFairnessClient
from repro.server.http import REQUEST_ENDPOINTS, FairnessHTTPServer

__all__ = ["FairnessHTTPServer", "HTTPFairnessClient", "REQUEST_ENDPOINTS"]
