"""Command-line interface for the FaiRank reproduction.

Six subcommands cover the common entry points without writing any Python:

* ``fairank table1`` — print the paper's Table 1 example and its scores;
* ``fairank quantify`` — run the QUANTIFY search on a CSV file (or the
  built-in example), under any formulation / transparency setting;
* ``fairank audit`` — run the AUDITOR scenario on a simulated platform crawl;
* ``fairank experiments`` — regenerate one or all of the E1–E12 experiment
  tables recorded in EXPERIMENTS.md;
* ``fairank serve-batch`` — execute a JSON file of protocol-v1 or -v2
  service requests (all request kinds) through the parallel batch executor
  and report per-request latency, errors, and cache statistics;
* ``fairank catalog`` — list the resources (name, kind, fingerprint prefix,
  rows/arity) of the registry ``serve-batch`` requests resolve against,
  optionally check which resources a batch file references, and optionally
  write the registry to a catalog snapshot file (``--save``);
* ``fairank serve`` — boot the HTTP front end (wire protocol v2 over REST)
  on the built-in registry or on a catalog snapshot (``--catalog``); with
  ``--workers N`` (N > 1) a fingerprint-routing shard router is booted over
  N snapshot-identical worker processes (``repro.shard``), and SIGINT /
  SIGTERM always shut the listener down cleanly, draining in-flight
  requests first.

The CLI is a thin veneer over the public API; everything it does can be done
programmatically (see README.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.core.formulations import Formulation
from repro.core.quantify import quantify
from repro.core.unfairness import unfairness_breakdown
from repro.data.loaders import TABLE1_WEIGHTS, load_csv, load_example_table1
from repro.errors import FaiRankError
from repro.marketplace.crawler import MarketplaceCrawler, available_platforms
from repro.roles.auditor import Auditor
from repro.scoring.linear import LinearScoringFunction
from repro.scoring.rank import RankDerivedScorer
from repro.session.render import render_tree

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="fairank",
        description="Explore fairness of ranking in online job marketplaces "
                    "(FaiRank reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # -- table1 ----------------------------------------------------------------
    subparsers.add_parser("table1", help="print the paper's Table 1 example dataset and scores")

    # -- quantify --------------------------------------------------------------
    quantify_parser = subparsers.add_parser(
        "quantify", help="run the QUANTIFY search on a dataset"
    )
    quantify_parser.add_argument("--csv",
                                 help="CSV file with a header row (default: built-in Table 1)")
    quantify_parser.add_argument("--protected", nargs="+",
                                 help="protected attribute columns (required with --csv)")
    quantify_parser.add_argument("--observed", nargs="+",
                                 help="observed (skill) attribute columns (required with --csv)")
    quantify_parser.add_argument("--weight", action="append", default=[],
                                 metavar="ATTR=W",
                                 help="scoring weight, e.g. --weight Rating=0.7 (repeatable; "
                                      "default: equal weights over all observed attributes)")
    # Objective/aggregation/distance names are deliberately *not* argparse
    # choices: Formulation.from_names is the one validation path (shared with
    # the wire protocol and the experiments), so every layer reports a bad
    # name with the same error message.
    quantify_parser.add_argument("--objective", default="most_unfair",
                                 help="most_unfair or least_unfair")
    quantify_parser.add_argument("--aggregation", default="average",
                                 help="average, maximum, minimum or variance")
    quantify_parser.add_argument("--distance", default="emd")
    quantify_parser.add_argument("--bins", type=int, default=5)
    quantify_parser.add_argument("--attributes", nargs="+",
                                 help="protected attributes the search may split on (default: all)")
    quantify_parser.add_argument("--min-partition-size", type=int, default=1)
    quantify_parser.add_argument("--max-depth", type=int, default=None)
    quantify_parser.add_argument("--ranks-only", action="store_true",
                                 help="analyse the induced ranking instead of the scores "
                                      "(function-opaque setting)")
    quantify_parser.add_argument("--no-tree", action="store_true",
                                 help="print only the summary, not the partitioning tree")

    # -- audit -----------------------------------------------------------------
    audit_parser = subparsers.add_parser(
        "audit", help="AUDITOR scenario on a simulated marketplace crawl"
    )
    audit_parser.add_argument("--platform", default="taskrabbit-sim",
                              choices=list(available_platforms()))
    audit_parser.add_argument("--workers", type=int, default=300)
    audit_parser.add_argument("--seed", type=int, default=11)
    audit_parser.add_argument("--min-partition-size", type=int, default=5)
    audit_parser.add_argument("--attributes", nargs="+", default=None)

    # -- experiments -------------------------------------------------------------
    experiments_parser = subparsers.add_parser(
        "experiments", help="regenerate the E1-E12 experiment tables"
    )
    experiments_parser.add_argument("ids", nargs="*",
                                    help="experiment ids to run (default: all), e.g. E1 E4")

    # -- serve-batch -------------------------------------------------------------
    serve_parser = subparsers.add_parser(
        "serve-batch",
        help="execute a JSON file of service requests through the batch executor",
    )
    serve_parser.add_argument(
        "requests",
        help="JSON file: a list of request objects, or {'requests': [...]} "
             "(each object needs a 'kind': quantify, audit, compare, breakdown, "
             "sweep, end_user or job_owner; protocol v1 files still execute)")
    serve_parser.add_argument("--workers", type=int, default=None,
                              help="thread-pool width (default: auto)")
    serve_parser.add_argument("--serial", action="store_true",
                              help="execute one request at a time instead of in parallel")
    serve_parser.add_argument("--repeat", type=int, default=1,
                              help="run the batch N times (later runs exercise the warm cache)")
    _add_registry_arguments(serve_parser)

    # -- catalog ----------------------------------------------------------------
    catalog_parser = subparsers.add_parser(
        "catalog",
        help="list the resources serve-batch requests resolve against",
    )
    catalog_parser.add_argument(
        "--requests", default=None,
        help="optional JSON batch file: additionally report whether each "
             "request's resources resolve in this registry")
    catalog_parser.add_argument(
        "--save", default=None, metavar="PATH",
        help="write this registry to a catalog snapshot JSON file "
             "(bootable via 'fairank serve --catalog PATH')")
    catalog_parser.add_argument(
        "--columnar", action="store_true",
        help="with --save: persist every dataset as raw column files under "
             "PATH.columns/<fingerprint>/ instead of embedded JSON rows; "
             "'fairank serve --catalog PATH' then memory-maps the arrays "
             "(recommended beyond ~100k rows)")
    _add_registry_arguments(catalog_parser)

    # -- lint -------------------------------------------------------------------
    lint_parser = subparsers.add_parser(
        "lint",
        help="run the repo-aware static analysis rule pack (see docs/ANALYSIS.md)",
    )
    lint_parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to analyse "
             "(default: src scripts benchmarks examples)")
    lint_parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="output_format",
        help="findings output: one 'file:line:col RULEID message' line each "
             "(text) or a machine-readable report (json)")
    lint_parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file masking tolerated legacy findings "
             "(default: .fairlint-baseline.json when it exists)")
    lint_parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to exactly mask the current findings "
             "(the ratchet: run after fixing legacy violations)")
    lint_parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rule catalogue and exit")

    # -- serve ------------------------------------------------------------------
    http_parser = subparsers.add_parser(
        "serve",
        help="serve wire protocol v2 over HTTP (one POST endpoint per request kind)",
    )
    http_parser.add_argument("--host", default="127.0.0.1",
                             help="bind address (default: 127.0.0.1)")
    http_parser.add_argument("--port", type=int, default=8080,
                             help="bind port; 0 picks a free ephemeral port")
    http_parser.add_argument(
        "--catalog", default=None, metavar="PATH", dest="catalog_path",
        help="boot the deployment registry from a catalog snapshot file "
             "(default: the same built-in registry as serve-batch)")
    http_parser.add_argument(
        "--workers", type=int, default=1,
        help="number of worker processes; >1 boots a fingerprint-routing "
             "shard router over N snapshot-booted workers (default: 1, "
             "single-process serving)")
    http_parser.add_argument("--batch-workers", type=int, default=None,
                             help="per-worker thread-pool width of /v2/batch "
                                  "(default: auto)")
    http_parser.add_argument("--verbose", action="store_true",
                             help="emit a structured JSON log event per request "
                                  "to stderr")
    http_parser.add_argument("--slow-ms", type=float, default=None,
                             help="log any request at or above this many "
                                  "milliseconds even without --verbose")
    http_parser.add_argument(
        "--warm-dir", default=None, metavar="PATH", dest="warm_dir",
        help="warm-start bundle directory: reload hot state "
             "(materialized score stores, cached results) saved by the "
             "previous graceful shutdown, and save it again on this one; "
             "stale or foreign bundles are skipped and computed cold")
    _add_registry_arguments(http_parser)

    return parser


def _add_registry_arguments(parser: argparse.ArgumentParser) -> None:
    """Options describing the built-in registry serve-batch/catalog expose."""
    parser.add_argument("--market-size", type=int, default=200,
                        help="size of the built-in crowdsourcing-sim marketplace")
    parser.add_argument("--synthetic", type=int, action="append", default=[],
                        metavar="SIZE",
                        help="also register a synthetic-SIZE dataset (repeatable)")
    parser.add_argument("--seed", type=int, default=7,
                        help="seed for the built-in synthetic workloads")


def _parse_weights(raw_weights: Sequence[str]) -> dict:
    weights = {}
    for entry in raw_weights:
        if "=" not in entry:
            raise FaiRankError(f"invalid --weight {entry!r}; expected ATTR=WEIGHT")
        attribute, _, value = entry.partition("=")
        try:
            weights[attribute.strip()] = float(value)
        except ValueError:
            raise FaiRankError(f"invalid weight value in {entry!r}") from None
    return weights


def _load_dataset(args: argparse.Namespace):
    if args.csv:
        if not args.protected or not args.observed:
            raise FaiRankError("--csv requires --protected and --observed column lists")
        return load_csv(args.csv, protected_names=args.protected, observed_names=args.observed)
    return load_example_table1()


def _build_function(args: argparse.Namespace, dataset) -> LinearScoringFunction:
    weights = _parse_weights(args.weight)
    if not weights:
        if args.csv:
            weights = {name: 1.0 for name in dataset.schema.observed_names}
        else:
            weights = dict(TABLE1_WEIGHTS)
    function = LinearScoringFunction(weights, name="cli-scoring-function")
    function.validate_against(dataset.schema)
    return function


def _cmd_table1(_: argparse.Namespace) -> int:
    dataset = load_example_table1()
    function = LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f")
    scores = function.score_map(dataset)
    header = ("uid", "Gender", "Country", "Language", "Ethnicity",
              "Language Test", "Rating", "f(w)")
    print(" | ".join(header))
    for individual in dataset:
        print(" | ".join(str(x) for x in (
            individual.uid, individual["Gender"], individual["Country"],
            individual["Language"], individual["Ethnicity"],
            individual["Language Test"], individual["Rating"],
            round(scores[individual.uid], 3),
        )))
    return 0


def _cmd_quantify(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    function = _build_function(args, dataset)
    formulation = Formulation.from_names(
        objective=args.objective,
        aggregation=args.aggregation,
        distance=args.distance,
        bins=args.bins,
    )
    effective_function = function
    if args.ranks_only:
        effective_function = RankDerivedScorer(function.rank(dataset), name="cli-from-ranks")
    result = quantify(
        dataset,
        effective_function,
        formulation=formulation,
        attributes=args.attributes,
        max_depth=args.max_depth,
        min_partition_size=args.min_partition_size,
    )
    breakdown = unfairness_breakdown(result.partitioning, effective_function, formulation)
    print(f"dataset: {dataset.name} ({len(dataset)} individuals)")
    print(f"scoring function: {function.describe()}"
          + (" [analysed via ranks only]" if args.ranks_only else ""))
    print(f"formulation: {formulation.describe()}")
    print(f"unfairness: {result.unfairness:.4f} over {len(result.partitioning)} groups")
    print(f"most favored:  {breakdown.most_favored}")
    print(f"least favored: {breakdown.least_favored}")
    if not args.no_tree:
        print()
        print(render_tree(result.tree, effective_function, formulation))
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    marketplace = MarketplaceCrawler(seed=args.seed).crawl(args.platform, workers=args.workers)
    auditor = Auditor(attributes=args.attributes, min_partition_size=args.min_partition_size)
    report = auditor.audit_marketplace(marketplace)
    print(marketplace.describe())
    print()
    print(report.render())
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.harness import run_all, run_experiment

    if args.ids:
        outcomes = [run_experiment(experiment_id) for experiment_id in args.ids]
    else:
        outcomes = run_all()
    for outcome in outcomes:
        print(outcome.render())
        print()
    return 0


def _serve_batch_service(args: argparse.Namespace):
    """The default catalogue ``serve-batch`` and ``catalog`` requests resolve against."""
    from repro.core.formulations import LEAST_UNFAIR_AVG_EMD, MOST_UNFAIR_AVG_EMD
    from repro.experiments.workloads import crowdsourcing_marketplace, synthetic_population
    from repro.service import FairnessService

    service = FairnessService()
    service.register_dataset(load_example_table1(), name="table1")
    service.register_function(LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f"))
    service.register_function(
        LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
    )
    service.register_marketplace(
        crowdsourcing_marketplace(size=args.market_size, seed=args.seed)
    )
    for size in dict.fromkeys(args.synthetic):
        service.register_dataset(
            synthetic_population(size=size, seed=args.seed), name=f"synthetic-{size}"
        )
    service.register_formulation(MOST_UNFAIR_AVG_EMD)
    service.register_formulation(LEAST_UNFAIR_AVG_EMD)
    return service


def _load_requests_file(path: str):
    """Parse a batch file into request objects (shared by serve-batch/catalog)."""
    from repro.service import request_from_json

    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise FaiRankError(f"cannot read requests file: {error}") from None
    except json.JSONDecodeError as error:
        raise FaiRankError(f"requests file is not valid JSON: {error}") from None
    entries = document.get("requests") if isinstance(document, dict) else document
    if not isinstance(entries, list) or not entries:
        raise FaiRankError(
            "requests file must contain a non-empty list of request objects "
            "(either top-level or under a 'requests' key)"
        )
    return [request_from_json(entry) for entry in entries]


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    from repro.service import BatchExecutor

    requests = _load_requests_file(args.requests)
    if args.repeat < 1:
        raise FaiRankError(f"--repeat must be >= 1, got {args.repeat}")
    if args.workers is not None and args.workers < 1:
        raise FaiRankError(f"--workers must be >= 1, got {args.workers}")

    service = _serve_batch_service(args)
    executor = BatchExecutor(service, max_workers=args.workers)
    errors = 0
    for round_number in range(1, args.repeat + 1):
        results = executor.run_serial(requests) if args.serial else executor.run(requests)
        if args.repeat > 1:
            print(f"-- round {round_number} --")
        print(f"{'#':>3}  {'kind':<9} {'key':<12} {'served':<6} {'latency':>10}")
        for index, result in enumerate(results, start=1):
            served = "hit" if result.cached else ("error" if result.error else "miss")
            print(
                f"{index:>3}  {result.kind:<9} {result.key[:12]:<12} "
                f"{served:<6} {result.elapsed_s * 1000:>8.2f}ms"
            )
        # Errors are never cached, so every round fails the same requests;
        # the summary reports per-request counts, not a per-round total.
        errors = 0
        for index, result in enumerate(results, start=1):
            if result.error is not None:
                errors += 1
                print(f"  ! #{index} [{result.error['code']}] {result.error['message']}")
    mode = "serial" if args.serial else f"parallel x{executor.max_workers}"
    print(f"executed {len(requests)} request(s) per round, {args.repeat} round(s), {mode}")
    if errors:
        print(f"errors: {errors} request(s) returned an error envelope")
    print(f"cache: {service.cache_stats.describe()}")
    print(f"score store: {service.store_stats.describe()}")
    # Partial failure is visible to scripts: 0 only when every request served.
    return 1 if errors else 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    from repro.roles.report import format_table

    service = _serve_batch_service(args)
    listing = service.catalog.describe()
    headers = ["name", "kind", "fingerprint", "details"]
    rows = []
    for entry in listing["resources"]:
        details = ", ".join(
            f"{key}={value}"
            for key, value in entry.items()
            if key not in ("name", "kind", "fingerprint", "frozen")
        )
        if entry["frozen"]:
            details = f"{details}, frozen" if details else "frozen"
        rows.append([entry["name"], entry["kind"], entry["fingerprint"][:12], details])
    print(format_table(headers, rows))
    counts = ", ".join(f"{count} {kind}(s)" for kind, count in listing["counts"].items())
    print(f"\n{counts}")

    if args.requests:
        requests = _load_requests_file(args.requests)
        print(f"\nbatch file {args.requests}: {len(requests)} request(s)")
        unresolved = 0
        for index, request in enumerate(requests, start=1):
            # Name-level resolution only: computing full request keys would
            # fingerprint datasets and, for rank-only requests, run the
            # scoring/ranking itself — far too heavy for a listing command.
            for kind, reference in _request_references(request):
                try:
                    {"dataset": service.dataset, "function": service.function,
                     "marketplace": service.marketplace}[kind](reference)
                except FaiRankError as error:
                    unresolved += 1
                    print(f"  ! #{index} ({request.kind}) does not resolve: {error}")
        if unresolved:
            print(f"{unresolved} reference(s) are missing from this registry")
        else:
            print("every request resolves against this registry")

    if args.save:
        service.catalog.save(
            args.save, columnar_datasets=True if args.columnar else None
        )
        print(f"\ncatalog snapshot written to {args.save}")
        if args.columnar:
            print(f"column sidecars written to {args.save}.columns/")
    return 0


def _serve_service(args: argparse.Namespace):
    """The service a ``fairank serve`` process answers from."""
    if args.catalog_path:
        from repro.catalog import Catalog
        from repro.service import FairnessService

        return FairnessService(catalog=Catalog.load(args.catalog_path))
    return _serve_batch_service(args)


def _install_shutdown_handlers(server) -> "threading.Event":
    """Make SIGINT/SIGTERM stop ``serve_forever`` instead of killing the process.

    The handler only *requests* the stop (``shutdown()`` must run off the
    serving thread, and must not run before ``serve_forever`` does); the
    caller then closes the listening socket with ``server_close()``, which
    drains in-flight requests before returning.  Outside the main thread
    (in-process tests) signal installation is skipped silently.
    """
    import signal
    import threading

    stop_requested = threading.Event()

    def _handle(signum, frame) -> None:
        if stop_requested.is_set():
            return
        stop_requested.set()
        threading.Thread(target=server.shutdown, daemon=True).start()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _handle)
        # Signal handlers can only be installed on the main thread; serving
        # from a helper thread (tests) simply runs without them.
        # fairlint: disable=FL007 -- intentional no-handler fallback
        except ValueError:  # pragma: no cover - only hit off the main thread
            pass
    return stop_requested


def _announce_serving(args: argparse.Namespace, counts, base_url: str,
                      workers: int = 1) -> None:
    rendered = ", ".join(f"{count} {kind}(s)" for kind, count in counts.items())
    source = args.catalog_path or "built-in registry"
    print(f"catalog ({source}): {rendered}")
    if workers > 1:
        print(f"shard router: {workers} worker process(es), "
              "fingerprint-routed")
    # The port line is machine-readable on purpose: with --port 0 it is the
    # only way a supervising script learns the bound port.
    print(f"serving fairness protocol v2 on {base_url} (Ctrl-C to stop)",
          flush=True)


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.workers < 1:
        raise FaiRankError(f"--workers must be >= 1, got {args.workers}")
    if args.workers > 1:
        return _cmd_serve_sharded(args)

    from repro.server import FairnessHTTPServer

    service = _serve_service(args)
    if args.warm_dir:
        from pathlib import Path

        # Load after the catalogue is populated: warm components are
        # verified against the live resources by content fingerprint.
        service.warm_dir = Path(args.warm_dir)
        service.load_warm_state()
    server = FairnessHTTPServer(
        service,
        host=args.host,
        port=args.port,
        max_workers=args.batch_workers,
        verbose=args.verbose,
        slow_ms=args.slow_ms,
    )
    # Handlers first, announcement second: a supervisor may signal the
    # instant it has parsed the port line off stdout.
    stop_requested = _install_shutdown_handlers(server)
    _announce_serving(args, service.catalog.describe()["counts"], server.base_url)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        stop_requested.set()
    finally:
        # server_close() drains: it joins in-flight handler threads, so a
        # SIGTERM'd server finishes the responses it already accepted.
        server.server_close()
    # After the drain, so the bundle includes the final requests' state.
    service.save_warm_state()
    print("shutting down")
    return 0


def _cmd_serve_sharded(args: argparse.Namespace) -> int:
    """``fairank serve --workers N``: a fingerprint-routed worker fleet."""
    import tempfile
    from pathlib import Path

    from repro.shard import ShardRouter, WorkerPool
    from repro.snapshot import snapshot_fingerprints

    temporary_snapshot = None
    if args.catalog_path:
        snapshot_path = Path(args.catalog_path)
    else:
        # The built-in registry must be identical in every worker, so it is
        # materialised once as a snapshot the workers boot from.
        service = _serve_batch_service(args)
        handle = tempfile.NamedTemporaryFile(
            prefix="fairank-catalog-", suffix=".json", delete=False
        )
        handle.close()
        temporary_snapshot = Path(handle.name)
        service.catalog.save(temporary_snapshot)
        snapshot_path = temporary_snapshot

    try:
        # Validates the snapshot up front (missing file, truncated JSON, bad
        # version) and gives the router its shared-nothing routing index.
        fingerprints = snapshot_fingerprints(snapshot_path)
        counts: dict = {}
        for kind, _name in fingerprints:
            counts[kind] = counts.get(kind, 0) + 1

        # Per-worker flags ride along on every worker's command line.
        worker_arguments: list = []
        if args.batch_workers is not None:
            worker_arguments += ["--batch-workers", str(args.batch_workers)]
        if args.verbose:
            worker_arguments += ["--verbose"]
        if args.slow_ms is not None:
            worker_arguments += ["--slow-ms", str(args.slow_ms)]
        pool = WorkerPool(
            snapshot_path, args.workers, host=args.host,
            worker_arguments=worker_arguments,
            warm_dir=Path(args.warm_dir) if args.warm_dir else None,
        )
        pool.start()
        try:
            router = ShardRouter(
                pool,
                host=args.host,
                port=args.port,
                fingerprints=fingerprints,
                verbose=args.verbose,
                slow_ms=args.slow_ms,
            )
            stop_requested = _install_shutdown_handlers(router)
            _announce_serving(args, counts, router.base_url, workers=args.workers)
            try:
                router.serve_forever()
            except KeyboardInterrupt:
                stop_requested.set()
            finally:
                router.server_close()
            print("shutting down")
        finally:
            pool.stop()
    finally:
        if temporary_snapshot is not None:
            temporary_snapshot.unlink(missing_ok=True)
    return 0


def _request_references(request):
    """(kind, name) pairs of the catalogue resources a request references.

    Delegates to the shard router's extractor so the CLI's resolution check
    and fingerprint routing can never disagree about which fields of a
    request name catalogue resources.
    """
    from repro.shard.routing import request_references

    return request_references(request.to_json())


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the static analysis rule pack; exit 1 on any gate failure."""
    from pathlib import Path

    from repro.analysis import (
        DEFAULT_BASELINE_NAME,
        DEFAULT_TARGETS,
        Baseline,
        all_rules,
        run_analysis,
        update_baseline,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id} {rule.name} [{rule.severity}]")
            print(f"    {rule.description}")
        return 0

    root = Path.cwd()
    targets = [Path(path) for path in args.paths] if args.paths else [
        root / target for target in DEFAULT_TARGETS if (root / target).exists()
    ]
    missing = [str(target) for target in targets if not target.exists()]
    if missing:
        raise FaiRankError(f"lint paths do not exist: {', '.join(missing)}")

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    baseline = None
    if baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError) as error:
            raise FaiRankError(f"cannot load baseline: {error}") from None
    elif args.baseline and not args.update_baseline:
        raise FaiRankError(f"baseline file {baseline_path} does not exist")

    report = run_analysis(targets, root=root, baseline=baseline)
    if args.update_baseline:
        updated = update_baseline(report, baseline_path)
        print(
            f"wrote {baseline_path} masking {updated.total} finding(s) "
            f"in {len(updated.entries)} file(s)"
        )
        return 0
    print(report.render(args.output_format))
    return 1 if report.failed else 0


_COMMANDS = {
    "table1": _cmd_table1,
    "quantify": _cmd_quantify,
    "audit": _cmd_audit,
    "experiments": _cmd_experiments,
    "serve-batch": _cmd_serve_batch,
    "catalog": _cmd_catalog,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except FaiRankError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
