"""Marketplace entities: jobs and marketplaces.

A *marketplace* (Qapa, MisterTemp', TaskRabbit, Fiverr in the paper's intro)
hosts a population of workers (a :class:`~repro.data.dataset.Dataset`) and a
set of *jobs*; every job ranks candidate workers with its own scoring
function, optionally restricted to workers matching a filter (e.g. "speaks
Arabic", "located in New York").  The auditor scenario iterates over a
marketplace's jobs; the end-user scenario compares how different marketplaces
treat a given group for a given job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.data.dataset import Dataset
from repro.data.filters import Filter, TrueFilter, apply_filter
from repro.errors import MarketplaceError
from repro.scoring.base import Ranking, ScoringFunction
from repro.scoring.rank import OpaqueScoringFunction

__all__ = ["Job", "Marketplace"]


@dataclass
class Job:
    """A job posting with its own scoring function.

    Attributes
    ----------
    title:
        Job title (unique within a marketplace).
    function:
        The scoring function used to rank candidates for this job.
    candidate_filter:
        Restriction on which workers are candidates (default: everyone).
    description:
        Free-text description shown in reports.
    """

    title: str
    function: ScoringFunction
    candidate_filter: Filter = field(default_factory=TrueFilter)
    description: str = ""

    def candidates(self, workers: Dataset) -> Dataset:
        """The sub-population of workers eligible for this job."""
        if isinstance(self.candidate_filter, TrueFilter):
            return workers
        candidates = apply_filter(workers, self.candidate_filter)
        if not len(candidates):
            raise MarketplaceError(
                f"job {self.title!r} has no eligible candidates "
                f"(filter: {self.candidate_filter.describe()})"
            )
        return candidates

    def ranking(self, workers: Dataset) -> Ranking:
        """Rank the eligible candidates for this job."""
        candidates = self.candidates(workers)
        if isinstance(self.function, OpaqueScoringFunction):
            return self.function.reveal_ranking(candidates)
        return self.function.rank(candidates)

    @property
    def is_transparent(self) -> bool:
        """Whether the job's scoring function is visible to auditors."""
        return getattr(self.function, "transparent", True)

    def describe(self) -> str:
        lines = [f"Job: {self.title}", f"  scoring: {self.function.describe()}"]
        if not isinstance(self.candidate_filter, TrueFilter):
            lines.append(f"  candidates: {self.candidate_filter.describe()}")
        if self.description:
            lines.append(f"  about: {self.description}")
        return "\n".join(lines)


class Marketplace:
    """An online job marketplace: a worker population plus a catalogue of jobs."""

    def __init__(self, name: str, workers: Dataset, jobs: Optional[Iterable[Job]] = None) -> None:
        if not isinstance(workers, Dataset):
            raise MarketplaceError("a marketplace needs a Dataset of workers")
        self.name = name
        self.workers = workers
        self._jobs: Dict[str, Job] = {}
        for job in jobs or ():
            self.add_job(job)

    # -- job catalogue ---------------------------------------------------------

    def add_job(self, job: Job, replace: bool = False) -> Job:
        """Register a job offering on this marketplace."""
        if job.title in self._jobs and not replace:
            raise MarketplaceError(
                f"marketplace {self.name!r} already offers a job titled {job.title!r}"
            )
        if hasattr(job.function, "validate_against"):
            job.function.validate_against(self.workers.schema)  # type: ignore[attr-defined]
        self._jobs[job.title] = job
        return job

    def job(self, title: str) -> Job:
        """Look up a job by title."""
        try:
            return self._jobs[title]
        except KeyError:
            raise MarketplaceError(
                f"marketplace {self.name!r} offers no job titled {title!r}; "
                f"available: {', '.join(sorted(self._jobs))}"
            ) from None

    @property
    def jobs(self) -> Tuple[Job, ...]:
        return tuple(self._jobs.values())

    @property
    def job_titles(self) -> Tuple[str, ...]:
        return tuple(self._jobs)

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs.values())

    def __contains__(self, title: object) -> bool:
        return title in self._jobs

    # -- views -------------------------------------------------------------------

    def ranking_for(self, title: str) -> Ranking:
        """The ranking the marketplace displays for a job."""
        return self.job(title).ranking(self.workers)

    def candidates_for(self, title: str) -> Dataset:
        """The eligible candidates for a job."""
        return self.job(title).candidates(self.workers)

    def summary(self) -> Dict[str, object]:
        """Summary used by reports and the session layer."""
        return {
            "marketplace": self.name,
            "workers": len(self.workers),
            "jobs": len(self._jobs),
            "job_titles": list(self._jobs),
            "protected_attributes": list(self.workers.schema.protected_names),
            "observed_attributes": list(self.workers.schema.observed_names),
        }

    def describe(self) -> str:
        lines = [
            f"Marketplace: {self.name} ({len(self.workers)} workers, {len(self._jobs)} jobs)"
        ]
        lines.extend(f"  - {job.title}: {job.function.describe()}" for job in self._jobs.values())
        return "\n".join(lines)
