"""Controlled bias injection for synthetic marketplace data.

The reproduction cannot use the paper's crawled Qapa/TaskRabbit/Fiverr data
(never released), so the generators plant *known* group-conditional score
gaps instead.  A :class:`BiasSpec` describes one such planted effect — "this
subgroup's observed attributes are shifted by delta" — which gives every
experiment a ground truth to recover: the most-unfair partitioning found by
QUANTIFY should isolate (a superset of) the biased subgroup, and unfairness
should grow with the planted gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset, Individual
from repro.errors import MarketplaceError

__all__ = ["BiasSpec", "apply_bias", "describe_bias"]


@dataclass(frozen=True)
class BiasSpec:
    """A planted group-conditional shift on observed attributes.

    Attributes
    ----------
    conditions:
        Mapping of protected attribute -> value; the shift applies to
        individuals matching *all* conditions (intersectional subgroups are
        expressed with several conditions).
    shifts:
        Mapping of observed attribute -> additive shift applied to matching
        individuals (values are clamped back into [0, 1]).
    name:
        Optional label used in experiment tables.
    """

    conditions: Tuple[Tuple[str, object], ...]
    shifts: Tuple[Tuple[str, float], ...]
    name: str = ""

    def __init__(
        self,
        conditions: Mapping[str, object],
        shifts: Mapping[str, float],
        name: str = "",
    ) -> None:
        object.__setattr__(self, "conditions", tuple(sorted(conditions.items())))
        object.__setattr__(self, "shifts", tuple(sorted((k, float(v)) for k, v in shifts.items())))
        object.__setattr__(self, "name", name or self._default_name())
        if not self.conditions:
            raise MarketplaceError("a bias spec needs at least one protected-attribute condition")
        if not self.shifts:
            raise MarketplaceError("a bias spec needs at least one observed-attribute shift")

    def _default_name(self) -> str:
        condition_text = ",".join(f"{attr}={value}" for attr, value in self.conditions)
        return f"bias[{condition_text}]"

    def matches(self, individual: Individual) -> bool:
        """True when the individual belongs to the biased subgroup."""
        return all(individual.get(attr) == value for attr, value in self.conditions)

    @property
    def condition_attributes(self) -> Tuple[str, ...]:
        return tuple(attr for attr, _ in self.conditions)

    @property
    def shifted_attributes(self) -> Tuple[str, ...]:
        return tuple(attr for attr, _ in self.shifts)

    def describe(self) -> str:
        condition_text = " and ".join(f"{attr}={value!r}" for attr, value in self.conditions)
        shift_text = ", ".join(f"{attr}{shift:+.2f}" for attr, shift in self.shifts)
        return f"{self.name}: if {condition_text} then {shift_text}"


def apply_bias(
    dataset: Dataset,
    specs: Sequence[BiasSpec],
    clamp: Tuple[float, float] = (0.0, 1.0),
) -> Dataset:
    """Apply planted biases to a dataset, returning a new dataset.

    Shifts accumulate when several specs match the same individual.  Observed
    values are clamped into ``clamp`` so they remain valid scores.
    """
    for spec in specs:
        for attr in spec.condition_attributes:
            if attr not in dataset.schema:
                raise MarketplaceError(f"bias condition uses unknown attribute {attr!r}")
        for attr in spec.shifted_attributes:
            attribute = dataset.schema.attribute(attr)
            if not attribute.is_observed:
                raise MarketplaceError(
                    f"bias shifts must target observed attributes, got {attr!r}"
                )
    low, high = clamp
    individuals = []
    for individual in dataset:
        updates: Dict[str, float] = {}
        for spec in specs:
            if not spec.matches(individual):
                continue
            for attr, shift in spec.shifts:
                current = updates.get(
                    attr, float(individual.values[attr])  # type: ignore[arg-type]
                )
                updates[attr] = current + shift
        if updates:
            clamped = {attr: float(np.clip(value, low, high)) for attr, value in updates.items()}
            individuals.append(individual.with_values(**clamped))
        else:
            individuals.append(individual)
    return Dataset(dataset.schema, individuals, name=f"{dataset.name}/biased", validate=False)


def describe_bias(specs: Sequence[BiasSpec]) -> str:
    """Multi-line description of all planted biases (for EXPERIMENTS.md tables)."""
    if not specs:
        return "no planted bias"
    return "\n".join(spec.describe() for spec in specs)
