"""Synthetic crowdsourcing-platform generator.

The demonstration relies on "simulated datasets mimicking crowdsourcing
platforms" (paper §4).  This generator produces such datasets: workers with
the same protected attributes as the paper's running example (gender,
country, year of birth, language, ethnicity, experience) and a configurable
set of observed skill attributes, with optional planted group-conditional
bias (see :mod:`repro.marketplace.bias`).

Everything is driven by an explicit seed so experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset, Individual
from repro.data.schema import Attribute, AttributeType, Schema, observed, protected
from repro.errors import MarketplaceError
from repro.marketplace.bias import BiasSpec, apply_bias

__all__ = ["PopulationSpec", "CrowdsourcingGenerator", "default_population_spec"]


@dataclass(frozen=True)
class PopulationSpec:
    """Distributional specification of a synthetic worker population.

    ``protected_distributions`` maps protected attribute name to a mapping of
    value -> probability (probabilities are normalised).  ``skills`` lists the
    observed attribute names; each skill is drawn from a Beta distribution
    whose (alpha, beta) parameters may be customised per skill.
    """

    protected_distributions: Mapping[str, Mapping[object, float]] = field(
        default_factory=dict
    )
    skills: Tuple[str, ...] = ("Language Test", "Rating")
    skill_parameters: Mapping[str, Tuple[float, float]] = field(default_factory=dict)
    experience_range: Tuple[int, int] = (0, 25)
    birth_year_range: Tuple[int, int] = (1960, 2006)

    def __post_init__(self) -> None:
        if not self.protected_distributions:
            raise MarketplaceError("a population spec needs protected attribute distributions")
        if not self.skills:
            raise MarketplaceError("a population spec needs at least one skill attribute")
        for name, distribution in self.protected_distributions.items():
            if not distribution:
                raise MarketplaceError(f"distribution for {name!r} is empty")
            if any(p < 0 for p in distribution.values()):
                raise MarketplaceError(f"distribution for {name!r} has negative probabilities")
            if sum(distribution.values()) <= 0:
                raise MarketplaceError(f"distribution for {name!r} sums to zero")

    def schema(self) -> Schema:
        """Schema implied by the specification."""
        attributes: List[Attribute] = []
        for name, distribution in self.protected_distributions.items():
            attributes.append(protected(name, domain=tuple(distribution)))
        attributes.append(protected("Year of Birth", atype=AttributeType.ORDINAL))
        attributes.append(protected("Experience", atype=AttributeType.ORDINAL))
        for skill in self.skills:
            attributes.append(observed(skill, domain=(0.0, 1.0)))
        return Schema(tuple(attributes))


def default_population_spec() -> PopulationSpec:
    """A population mimicking the paper's crowdsourcing example (Table 1 attributes)."""
    return PopulationSpec(
        protected_distributions={
            "Gender": {"Female": 0.45, "Male": 0.55},
            "Country": {"America": 0.4, "India": 0.35, "Other": 0.25},
            "Language": {"English": 0.6, "Indian": 0.25, "Other": 0.15},
            "Ethnicity": {
                "White": 0.4,
                "Indian": 0.3,
                "African-American": 0.2,
                "Other": 0.1,
            },
        },
        skills=("Language Test", "Rating"),
        skill_parameters={"Language Test": (2.5, 1.8), "Rating": (3.0, 1.5)},
    )


class CrowdsourcingGenerator:
    """Generates synthetic crowdsourcing worker populations.

    Parameters
    ----------
    spec:
        Population specification (default: :func:`default_population_spec`).
    seed:
        Seed of the underlying pseudo-random generator; identical seeds yield
        identical datasets.
    """

    def __init__(self, spec: Optional[PopulationSpec] = None, seed: int = 7) -> None:
        self.spec = spec or default_population_spec()
        self.seed = seed

    def generate(
        self,
        size: int,
        biases: Sequence[BiasSpec] = (),
        name: str = "synthetic-crowdsourcing",
        columnar: bool = False,
    ) -> Dataset:
        """Generate ``size`` workers, optionally with planted biases applied.

        With ``columnar=True`` the population is packaged as a column-backed
        dataset (:meth:`~repro.data.dataset.Dataset.from_store`) instead of
        per-row :class:`Individual` dicts — same RNG draws, same values, same
        content fingerprint, but a million-row population costs a handful of
        contiguous arrays.  Planted biases rewrite rows, so a biased
        population always materialises rows (``columnar`` is ignored).
        """
        if size < 1:
            raise MarketplaceError(f"population size must be >= 1, got {size}")
        rng = np.random.default_rng(self.seed)
        schema = self.spec.schema()

        protected_columns: Dict[str, np.ndarray] = {}
        for attribute, distribution in self.spec.protected_distributions.items():
            values = list(distribution)
            probabilities = np.asarray([distribution[v] for v in values], dtype=float)
            probabilities = probabilities / probabilities.sum()
            protected_columns[attribute] = rng.choice(values, size=size, p=probabilities)

        low_year, high_year = self.spec.birth_year_range
        birth_years = rng.integers(low_year, high_year + 1, size=size)
        low_exp, high_exp = self.spec.experience_range
        experience = rng.integers(low_exp, high_exp + 1, size=size)

        skill_columns: Dict[str, np.ndarray] = {}
        for skill in self.spec.skills:
            alpha, beta = self.spec.skill_parameters.get(skill, (2.0, 2.0))
            base = rng.beta(alpha, beta, size=size)
            # Mild experience effect: more experienced workers tend to score a
            # little higher, mimicking reputation accumulation on platforms.
            experience_effect = 0.1 * (experience - low_exp) / max(high_exp - low_exp, 1)
            skill_columns[skill] = np.clip(base + experience_effect, 0.0, 1.0)

        # Per-row rounding shared by both packagings: Python round() is
        # decimal-correct where np.round is not, so the columnar path must
        # use the same scalar rounding to stay byte-identical.
        rounded_skills = {
            skill: [float(round(value, 4)) for value in column.tolist()]
            for skill, column in skill_columns.items()
        }

        if columnar and not biases:
            from repro.data.columns import CodedColumn, ColumnStore, NumericColumn

            columns: Dict[str, object] = {}
            for attribute, column in protected_columns.items():
                values = list(self.spec.protected_distributions[attribute])
                lookup = {value: code for code, value in enumerate(values)}
                codes = np.fromiter(
                    (lookup[value] for value in column.tolist()),
                    dtype=np.int64,
                    count=size,
                )
                columns[attribute] = CodedColumn(codes, values)
            for attribute, ints in (
                ("Year of Birth", birth_years),
                ("Experience", experience),
            ):
                uniques, inverse = np.unique(ints, return_inverse=True)
                columns[attribute] = CodedColumn(
                    inverse.astype(np.int64), [int(v) for v in uniques]
                )
            for skill in self.spec.skills:
                columns[skill] = NumericColumn(
                    np.asarray(rounded_skills[skill], dtype=np.float64)
                )
            store = ColumnStore(size, columns)  # sequential w1..wn uids
            return Dataset.from_store(schema, store, name=name, validate=False)

        individuals = []
        for index in range(size):
            values: Dict[str, object] = {
                attribute: column[index].item() if hasattr(column[index], "item") else column[index]
                for attribute, column in protected_columns.items()
            }
            values["Year of Birth"] = int(birth_years[index])
            values["Experience"] = int(experience[index])
            for skill in self.spec.skills:
                values[skill] = rounded_skills[skill][index]
            individuals.append(Individual(uid=f"w{index + 1}", values=values))

        dataset = Dataset(schema, individuals, name=name, validate=False)
        if biases:
            dataset = apply_bias(dataset, biases)
        return dataset

    def generate_with_intersectional_bias(
        self,
        size: int,
        subgroup: Mapping[str, object],
        penalty: float = -0.25,
        skills: Optional[Sequence[str]] = None,
        name: str = "synthetic-biased",
    ) -> Tuple[Dataset, BiasSpec]:
        """Generate a population where one intersectional subgroup is penalised.

        Returns the dataset and the planted :class:`BiasSpec` so experiments
        can check whether the most-unfair partitioning recovered it.
        """
        shift_targets = tuple(skills or self.spec.skills)
        spec = BiasSpec(
            conditions=dict(subgroup),
            shifts={skill: penalty for skill in shift_targets},
            name="planted-intersectional-bias",
        )
        return self.generate(size, biases=(spec,), name=name), spec
