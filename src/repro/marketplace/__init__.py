"""Marketplace substrate: entities, synthetic generator and simulated crawler (S10)."""

from repro.marketplace.bias import BiasSpec, apply_bias, describe_bias
from repro.marketplace.crawler import (
    PLATFORM_PROFILES,
    MarketplaceCrawler,
    PlatformProfile,
    available_platforms,
)
from repro.marketplace.entities import Job, Marketplace
from repro.marketplace.generator import (
    CrowdsourcingGenerator,
    PopulationSpec,
    default_population_spec,
)
from repro.marketplace.ranking import (
    GroupRankingStats,
    exposure_by_group,
    group_ranking_stats,
    ranking_report,
    top_k_share,
)

__all__ = [
    "Job",
    "Marketplace",
    "BiasSpec",
    "apply_bias",
    "describe_bias",
    "CrowdsourcingGenerator",
    "PopulationSpec",
    "default_population_spec",
    "MarketplaceCrawler",
    "PlatformProfile",
    "PLATFORM_PROFILES",
    "available_platforms",
    "GroupRankingStats",
    "group_ranking_stats",
    "exposure_by_group",
    "top_k_share",
    "ranking_report",
]
