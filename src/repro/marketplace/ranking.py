"""Ranking-level analyses of marketplace jobs.

Helpers that turn a job's ranking into the group-level quantities reports
need: where each protected group lands on average, how much exposure it gets,
and which groups dominate the top of the list.  These are the statistics an
end-user or auditor reads alongside the EMD-based unfairness numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import MarketplaceError
from repro.marketplace.entities import Marketplace
from repro.scoring.base import Ranking

__all__ = [
    "GroupRankingStats",
    "group_ranking_stats",
    "exposure_by_group",
    "top_k_share",
    "ranking_report",
]


@dataclass(frozen=True)
class GroupRankingStats:
    """Position statistics of one protected group inside one ranking."""

    group: str
    size: int
    mean_position: float
    median_position: float
    best_position: int
    exposure_share: float
    top_10_share: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "group": self.group,
            "size": self.size,
            "mean_position": self.mean_position,
            "median_position": self.median_position,
            "best_position": self.best_position,
            "exposure_share": self.exposure_share,
            "top_10_share": self.top_10_share,
        }


def _positions_by_group(
    ranking: Ranking, dataset: Dataset, attribute: str
) -> Dict[str, List[int]]:
    dataset.schema.require_protected(attribute)
    value_of = {individual.uid: individual.values[attribute] for individual in dataset}
    positions: Dict[str, List[int]] = {}
    for position, (uid, _) in enumerate(ranking, start=1):
        if uid not in value_of:
            raise MarketplaceError(
                f"ranking mentions {uid!r} which is not in dataset {dataset.name!r}"
            )
        group = str(value_of[uid])
        positions.setdefault(group, []).append(position)
    return positions


def exposure_by_group(ranking: Ranking, dataset: Dataset, attribute: str) -> Dict[str, float]:
    """Share of total ranking exposure received by each group.

    Exposure of position ``i`` is the standard logarithmic discount
    ``1 / log2(i + 1)`` (Singh & Joachims' fairness-of-exposure model, which
    the paper cites as related work).
    """
    positions = _positions_by_group(ranking, dataset, attribute)
    exposures = {
        group: sum(1.0 / math.log2(position + 1) for position in group_positions)
        for group, group_positions in positions.items()
    }
    total = sum(exposures.values())
    if total <= 0:
        return {group: 0.0 for group in exposures}
    return {group: value / total for group, value in exposures.items()}


def top_k_share(
    ranking: Ranking, dataset: Dataset, attribute: str, k: int = 10
) -> Dict[str, float]:
    """Fraction of the top-k positions occupied by each group."""
    if k < 1:
        raise MarketplaceError(f"top-k share needs k >= 1, got {k}")
    value_of = {individual.uid: str(individual.values[attribute]) for individual in dataset}
    top = ranking.top(min(k, len(ranking)))
    counts: Dict[str, int] = {}
    for uid in top:
        counts[value_of[uid]] = counts.get(value_of[uid], 0) + 1
    total = len(top)
    groups = {str(value) for value in dataset.distinct_values(attribute)}
    return {group: counts.get(group, 0) / total for group in sorted(groups)}


def group_ranking_stats(
    ranking: Ranking, dataset: Dataset, attribute: str, top_k: int = 10
) -> List[GroupRankingStats]:
    """Per-group position statistics for one ranking, sorted by mean position."""
    positions = _positions_by_group(ranking, dataset, attribute)
    exposure = exposure_by_group(ranking, dataset, attribute)
    top_share = top_k_share(ranking, dataset, attribute, k=top_k)
    stats: List[GroupRankingStats] = []
    for group, group_positions in positions.items():
        array = np.asarray(group_positions, dtype=float)
        stats.append(
            GroupRankingStats(
                group=group,
                size=len(group_positions),
                mean_position=float(array.mean()),
                median_position=float(np.median(array)),
                best_position=int(array.min()),
                exposure_share=exposure.get(group, 0.0),
                top_10_share=top_share.get(group, 0.0),
            )
        )
    stats.sort(key=lambda s: s.mean_position)
    return stats


def ranking_report(
    marketplace: Marketplace, job_title: str, attribute: str, top_k: int = 10
) -> Dict[str, object]:
    """A per-job ranking report keyed by a single protected attribute."""
    job = marketplace.job(job_title)
    candidates = job.candidates(marketplace.workers)
    ranking = job.ranking(marketplace.workers)
    stats = group_ranking_stats(ranking, candidates, attribute, top_k=top_k)
    return {
        "marketplace": marketplace.name,
        "job": job_title,
        "attribute": attribute,
        "candidates": len(candidates),
        "transparent": job.is_transparent,
        "groups": [entry.as_dict() for entry in stats],
    }
