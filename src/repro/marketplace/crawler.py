"""Simulated crawl of online freelancing marketplaces.

The paper's demonstration also uses "real-data crawled from online freelancing
marketplaces" (Qapa, MisterTemp', TaskRabbit, Fiverr).  Those crawls were
never published, so this module builds the closest synthetic equivalent: a
:class:`MarketplaceCrawler` that "crawls" a named platform profile and
returns a fully-populated :class:`~repro.marketplace.entities.Marketplace`
— workers with platform-specific demographics, reputation and skill signals
(with group-conditional gaps consistent with what published audits of those
platforms report, e.g. Hannák et al. CSCW 2017 found lower review scores for
women and Black workers on TaskRabbit/Fiverr), plus a catalogue of jobs with
their scoring functions.

The substitution preserves the behaviour FaiRank exercises: heterogeneous
attribute schemas across platforms, per-job scoring functions, and realistic
(planted, hence verifiable) group score gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.data.dataset import Dataset, Individual
from repro.data.schema import Schema, observed, protected
from repro.errors import MarketplaceError
from repro.marketplace.bias import BiasSpec, apply_bias
from repro.marketplace.entities import Job, Marketplace
from repro.scoring.linear import LinearScoringFunction
from repro.scoring.rank import OpaqueScoringFunction

__all__ = ["PlatformProfile", "MarketplaceCrawler", "PLATFORM_PROFILES", "available_platforms"]


@dataclass(frozen=True)
class PlatformProfile:
    """Static description of one freelancing platform to simulate.

    ``demographics`` maps protected attribute -> value distribution;
    ``skills`` maps observed attribute -> Beta(alpha, beta) parameters;
    ``group_gaps`` lists planted group-conditional shifts mirroring published
    audit findings for that platform; ``job_templates`` lists
    ``(title, weights, opaque)`` triples used to build the job catalogue.
    """

    name: str
    demographics: Mapping[str, Mapping[str, float]]
    skills: Mapping[str, Tuple[float, float]]
    group_gaps: Tuple[BiasSpec, ...]
    job_templates: Tuple[Tuple[str, Mapping[str, float], bool], ...]
    cities: Tuple[str, ...] = ()

    def schema(self) -> Schema:
        attributes = [
            protected(name, domain=tuple(distribution))
            for name, distribution in self.demographics.items()
        ]
        attributes.append(protected("Age Band", domain=("18-29", "30-44", "45-59", "60+")))
        attributes.extend(observed(skill, domain=(0.0, 1.0)) for skill in self.skills)
        return Schema(tuple(attributes))


def _taskrabbit_profile() -> PlatformProfile:
    return PlatformProfile(
        name="taskrabbit-sim",
        demographics={
            "Gender": {"Female": 0.42, "Male": 0.58},
            "Ethnicity": {"White": 0.55, "Black": 0.2, "Asian": 0.15, "Hispanic": 0.1},
            "City": {"New York": 0.35, "Chicago": 0.25, "San Francisco": 0.25, "Other": 0.15},
        },
        skills={
            "Rating": (8.0, 1.5),
            "Completed Tasks": (2.0, 3.0),
            "Handyman Skill": (2.5, 2.0),
            "Moving Skill": (2.2, 2.2),
        },
        group_gaps=(
            BiasSpec({"Gender": "Female"}, {"Rating": -0.04}, name="tr-gender-review-gap"),
            BiasSpec({"Ethnicity": "Black"}, {"Rating": -0.08, "Completed Tasks": -0.05},
                     name="tr-ethnicity-review-gap"),
        ),
        job_templates=(
            ("Furniture assembly", {"Handyman Skill": 0.6, "Rating": 0.4}, False),
            ("Apartment moving",
             {"Moving Skill": 0.5, "Rating": 0.3, "Completed Tasks": 0.2}, False),
            ("Home repairs", {"Handyman Skill": 0.5, "Completed Tasks": 0.3, "Rating": 0.2}, True),
            ("Installing wood panels", {"Handyman Skill": 0.7, "Rating": 0.3}, False),
        ),
    )


def _fiverr_profile() -> PlatformProfile:
    return PlatformProfile(
        name="fiverr-sim",
        demographics={
            "Gender": {"Female": 0.47, "Male": 0.53},
            "Country": {"USA": 0.3, "India": 0.25, "Pakistan": 0.15, "Europe": 0.2, "Other": 0.1},
            "Ethnicity": {"White": 0.45, "Black": 0.15, "Asian": 0.3, "Other": 0.1},
        },
        skills={
            "Rating": (9.0, 1.2),
            "Response Rate": (5.0, 1.5),
            "Design Skill": (2.4, 2.0),
            "Writing Skill": (2.6, 1.9),
            "Coding Skill": (2.2, 2.3),
        },
        group_gaps=(
            BiasSpec({"Ethnicity": "Black"}, {"Rating": -0.06}, name="fv-ethnicity-review-gap"),
            BiasSpec({"Gender": "Female", "Country": "India"},
                     {"Rating": -0.05, "Response Rate": -0.04},
                     name="fv-intersectional-gap"),
        ),
        job_templates=(
            ("Logo design", {"Design Skill": 0.6, "Rating": 0.4}, False),
            ("Blog writing", {"Writing Skill": 0.5, "Rating": 0.3, "Response Rate": 0.2}, False),
            ("Web scraping script",
             {"Coding Skill": 0.6, "Rating": 0.2, "Response Rate": 0.2}, False),
            ("Write code for a web app", {"Coding Skill": 0.7, "Rating": 0.3}, True),
            ("Translate a document", {"Writing Skill": 0.6, "Response Rate": 0.4}, False),
        ),
    )


def _qapa_profile() -> PlatformProfile:
    return PlatformProfile(
        name="qapa-sim",
        demographics={
            "Gender": {"Female": 0.48, "Male": 0.52},
            "Region": {"Ile-de-France": 0.3, "Auvergne-Rhone-Alpes": 0.25,
                       "Occitanie": 0.2, "Other": 0.25},
            "Origin": {"French": 0.6, "EU": 0.2, "Non-EU": 0.2},
        },
        skills={
            "Experience Score": (2.0, 2.5),
            "Diploma Level": (2.5, 2.5),
            "French Test": (4.0, 1.5),
            "Manual Skill": (2.3, 2.1),
        },
        group_gaps=(
            BiasSpec({"Origin": "Non-EU"}, {"Experience Score": -0.07, "French Test": -0.1},
                     name="qapa-origin-gap"),
            BiasSpec({"Gender": "Female", "Region": "Other"}, {"Manual Skill": -0.06},
                     name="qapa-intersectional-gap"),
        ),
        job_templates=(
            ("Installing wood panels", {"Manual Skill": 0.7, "Experience Score": 0.3}, False),
            ("Warehouse operator", {"Manual Skill": 0.5, "Experience Score": 0.5}, False),
            ("Customer support",
             {"French Test": 0.6, "Diploma Level": 0.2, "Experience Score": 0.2}, True),
            ("Delivery driver", {"Experience Score": 0.6, "Manual Skill": 0.4}, False),
        ),
    )


def _mistertemp_profile() -> PlatformProfile:
    return PlatformProfile(
        name="mistertemp-sim",
        demographics={
            "Gender": {"Female": 0.46, "Male": 0.54},
            "Region": {"Ile-de-France": 0.4, "PACA": 0.2, "Grand-Est": 0.15, "Other": 0.25},
            "Origin": {"French": 0.65, "EU": 0.15, "Non-EU": 0.2},
        },
        skills={
            "Experience Score": (2.2, 2.3),
            "Reliability": (5.0, 1.6),
            "Technical Skill": (2.4, 2.2),
        },
        group_gaps=(
            BiasSpec({"Origin": "Non-EU"}, {"Reliability": -0.05}, name="mt-origin-gap"),
        ),
        job_templates=(
            ("Electrician assistant", {"Technical Skill": 0.6, "Reliability": 0.4}, False),
            ("Forklift operator", {"Experience Score": 0.5, "Reliability": 0.5}, False),
            ("Night-shift stocker", {"Reliability": 0.7, "Experience Score": 0.3}, True),
        ),
    )


PLATFORM_PROFILES: Dict[str, PlatformProfile] = {
    profile.name: profile
    for profile in (
        _taskrabbit_profile(),
        _fiverr_profile(),
        _qapa_profile(),
        _mistertemp_profile(),
    )
}


def available_platforms() -> Tuple[str, ...]:
    """Names of the platform profiles the crawler can simulate."""
    return tuple(sorted(PLATFORM_PROFILES))


class MarketplaceCrawler:
    """Simulates crawling a freelancing platform into a :class:`Marketplace`."""

    def __init__(self, seed: int = 11) -> None:
        self.seed = seed

    def crawl(self, platform: str, workers: int = 500) -> Marketplace:
        """"Crawl" the named platform profile into a marketplace object.

        Parameters
        ----------
        platform:
            One of :func:`available_platforms` (e.g. ``"taskrabbit-sim"``).
        workers:
            Number of worker profiles to crawl.
        """
        try:
            profile = PLATFORM_PROFILES[platform]
        except KeyError:
            raise MarketplaceError(
                f"unknown platform {platform!r}; available: {', '.join(available_platforms())}"
            ) from None
        if workers < 1:
            raise MarketplaceError(f"workers must be >= 1, got {workers}")

        dataset = self._generate_workers(profile, workers)
        dataset = apply_bias(dataset, profile.group_gaps)
        marketplace = Marketplace(name=profile.name, workers=dataset)
        for title, weights, opaque in profile.job_templates:
            function = LinearScoringFunction(weights, name=title)
            if opaque:
                marketplace.add_job(
                    Job(title=title, function=OpaqueScoringFunction(function, name=title),
                        description="scoring function not disclosed by the platform")
                )
            else:
                marketplace.add_job(Job(title=title, function=function))
        return marketplace

    def crawl_all(self, workers: int = 500) -> List[Marketplace]:
        """Crawl every known platform profile."""
        return [self.crawl(platform, workers=workers) for platform in available_platforms()]

    def _generate_workers(self, profile: PlatformProfile, size: int) -> Dataset:
        rng = np.random.default_rng(self.seed + hash(profile.name) % 10_000)
        schema = profile.schema()

        columns: Dict[str, np.ndarray] = {}
        for attribute, distribution in profile.demographics.items():
            values = list(distribution)
            probabilities = np.asarray([distribution[v] for v in values], dtype=float)
            probabilities = probabilities / probabilities.sum()
            columns[attribute] = rng.choice(values, size=size, p=probabilities)
        columns["Age Band"] = rng.choice(
            ["18-29", "30-44", "45-59", "60+"], size=size, p=[0.35, 0.35, 0.22, 0.08]
        )
        for skill, (alpha, beta) in profile.skills.items():
            columns[skill] = np.round(rng.beta(alpha, beta, size=size), 4)

        individuals = []
        for index in range(size):
            values: Dict[str, object] = {}
            for attribute in schema.names:
                raw = columns[attribute][index]
                values[attribute] = (
                    float(raw) if schema.attribute(attribute).is_observed else str(raw)
                )
            individuals.append(Individual(uid=f"{profile.name}-w{index + 1}", values=values))
        return Dataset(schema, individuals, name=f"{profile.name}-crawl", validate=False)
