"""Unfairness formulations: objective × aggregation × distance.

The paper formulates the search for an unfair partitioning as an optimisation
problem whose objective can vary along three axes:

* **objective** — find the *most* unfair partitioning (argmax, Definition 1)
  or the *least* unfair one (argmin, the "Least Unfair Partitioning Problem");
* **aggregation** — how pairwise distances between partitions are folded into
  a single number: the paper's default is the *average* pairwise EMD
  (Definition 2), with maximum, minimum and variance called out as
  alternatives ("highest average, lowest variance, etc.");
* **distance** — the paper uses EMD between score histograms; other
  histogram distances are pluggable (see :mod:`repro.metrics.distances`).

A :class:`Formulation` bundles the three choices plus the histogram binning,
and exposes the comparison semantics ("is value a better than value b?") the
greedy and exhaustive algorithms need.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Optional, Sequence

import numpy as np

from repro.errors import FormulationError
from repro.metrics.distances import DistanceMeasure, EMDDistance, get_distance
from repro.metrics.histogram import DEFAULT_BINS, Binning

__all__ = [
    "Objective",
    "Aggregation",
    "Formulation",
    "MOST_UNFAIR_AVG_EMD",
    "LEAST_UNFAIR_AVG_EMD",
    "resolve_binning",
]


class Objective(str, Enum):
    """Direction of the optimisation over partitionings."""

    MOST_UNFAIR = "most_unfair"
    LEAST_UNFAIR = "least_unfair"

    @property
    def is_maximizing(self) -> bool:
        return self is Objective.MOST_UNFAIR


class Aggregation(str, Enum):
    """How pairwise distances are aggregated into one unfairness value."""

    AVERAGE = "average"
    MAXIMUM = "maximum"
    MINIMUM = "minimum"
    VARIANCE = "variance"

    def apply(self, values: Sequence[float]) -> float:
        """Aggregate a sequence of pairwise distances.

        By convention the aggregation of an empty sequence (a partitioning
        with a single partition has no pairs) is 0.0 — a single group cannot
        be unfair to itself.
        """
        data = np.asarray(list(values), dtype=float)
        if data.size == 0:
            return 0.0
        if self is Aggregation.AVERAGE:
            return float(data.mean())
        if self is Aggregation.MAXIMUM:
            return float(data.max())
        if self is Aggregation.MINIMUM:
            return float(data.min())
        if self is Aggregation.VARIANCE:
            return float(data.var())
        raise FormulationError(f"unhandled aggregation {self!r}")  # pragma: no cover


@dataclass(frozen=True)
class Formulation:
    """A complete unfairness formulation.

    Attributes
    ----------
    objective:
        Whether the search looks for the most or least unfair partitioning.
    aggregation:
        How pairwise histogram distances are folded into one number.
    distance:
        The histogram distance (EMD by default).
    bins:
        Number of equal-width histogram bins over the score range.
    binning:
        Optional explicit binning; when None, the unit interval [0, 1] with
        ``bins`` bins is used (normalised scoring functions).
    """

    objective: Objective = Objective.MOST_UNFAIR
    aggregation: Aggregation = Aggregation.AVERAGE
    distance: DistanceMeasure = EMDDistance
    bins: int = DEFAULT_BINS
    binning: Optional[Binning] = None

    def __post_init__(self) -> None:
        if self.bins < 1:
            raise FormulationError(f"formulation needs at least 1 bin, got {self.bins}")

    # -- configuration ------------------------------------------------------

    @property
    def effective_binning(self) -> Binning:
        """The binning histograms are built over."""
        if self.binning is not None:
            return self.binning
        return Binning.unit(self.bins)

    @property
    def name(self) -> str:
        """Short name, e.g. ``"most_unfair/average/emd"``."""
        return f"{self.objective.value}/{self.aggregation.value}/{self.distance.name}"

    def describe(self) -> str:
        direction = "maximise" if self.objective.is_maximizing else "minimise"
        return (
            f"{direction} the {self.aggregation.value} pairwise {self.distance.name} "
            f"over {self.effective_binning.bins}-bin score histograms"
        )

    def with_objective(self, objective: Objective) -> "Formulation":
        return replace(self, objective=objective)

    def with_aggregation(self, aggregation: Aggregation) -> "Formulation":
        return replace(self, aggregation=aggregation)

    def with_distance(self, distance: DistanceMeasure) -> "Formulation":
        return replace(self, distance=distance)

    # -- comparison semantics -------------------------------------------------

    def aggregate(self, pairwise_values: Sequence[float]) -> float:
        """Aggregate pairwise distances into a single unfairness value."""
        return self.aggregation.apply(pairwise_values)

    def is_better(self, candidate: float, incumbent: float, tolerance: float = 1e-12) -> bool:
        """True when ``candidate`` strictly improves on ``incumbent`` for this objective."""
        if self.objective.is_maximizing:
            return candidate > incumbent + tolerance
        return candidate < incumbent - tolerance

    def is_at_least_as_good(
        self, candidate: float, incumbent: float, tolerance: float = 1e-12
    ) -> bool:
        """True when ``candidate`` is at least as good as ``incumbent``."""
        if self.objective.is_maximizing:
            return candidate >= incumbent - tolerance
        return candidate <= incumbent + tolerance

    def best(self, values: Sequence[float]) -> float:
        """The best value among ``values`` for this objective."""
        data = list(values)
        if not data:
            raise FormulationError("cannot take the best of an empty sequence")
        return max(data) if self.objective.is_maximizing else min(data)

    def argbest(self, values: Sequence[float]) -> int:
        """Index of the best value among ``values`` for this objective."""
        data = list(values)
        if not data:
            raise FormulationError("cannot take the argbest of an empty sequence")
        best_value = self.best(data)
        return data.index(best_value)

    @classmethod
    def from_names(
        cls,
        objective: str = "most_unfair",
        aggregation: str = "average",
        distance: str = "emd",
        bins: int = DEFAULT_BINS,
    ) -> "Formulation":
        """Build a formulation from plain strings (session-layer configuration)."""
        try:
            parsed_objective = Objective(objective)
        except ValueError:
            raise FormulationError(
                f"unknown objective {objective!r}; use 'most_unfair' or 'least_unfair'"
            ) from None
        try:
            parsed_aggregation = Aggregation(aggregation)
        except ValueError:
            raise FormulationError(
                f"unknown aggregation {aggregation!r}; use one of "
                f"{', '.join(a.value for a in Aggregation)}"
            ) from None
        return cls(
            objective=parsed_objective,
            aggregation=parsed_aggregation,
            distance=get_distance(distance),
            bins=bins,
        )


def resolve_binning(formulation: Formulation, binning: Optional[Binning] = None) -> Binning:
    """The single source of truth for the binning a formulation's histograms use.

    Every hot path (``quantify``, ``unfairness``, ``unfairness_breakdown``,
    the score store) resolves its binning through this function, so a
    formulation that omits an explicit ``binning`` gets one consistent
    default (the unit interval with ``formulation.bins`` bins) everywhere.
    Passing an explicit ``binning`` that disagrees with the formulation's is
    an error: histograms built over mismatched binnings silently produce
    meaningless distances, so the mismatch is raised instead.
    """
    effective = formulation.effective_binning
    if binning is not None and binning != effective:
        raise FormulationError(
            f"explicit binning {binning} conflicts with the formulation's binning "
            f"{effective}; drop the explicit binning or build the formulation with "
            "binning=... so every histogram uses the same bins"
        )
    return effective


#: The paper's default formulation (Definitions 1 and 2).
MOST_UNFAIR_AVG_EMD = Formulation()

#: The "Least Unfair Partitioning Problem" variant.
LEAST_UNFAIR_AVG_EMD = Formulation(objective=Objective.LEAST_UNFAIR)
