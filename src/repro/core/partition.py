"""Partitions and partitionings of individuals over protected attributes.

A *partition* is a group of individuals selected by a conjunction of
protected-attribute constraints (e.g. ``Gender=Male AND Language=English``);
a *partitioning* is a full, disjoint set of such partitions covering the whole
population (Definition 1 of the paper).  Partitionings are what FaiRank
scores: the unfairness of a scoring function for a partitioning is an
aggregation of pairwise distances between the partitions' score histograms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import PartitioningError
from repro.metrics.histogram import Binning, Histogram, build_histogram
from repro.scoring.base import ScoringFunction, frozen_scores

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.scorestore import ScoreStore

__all__ = ["Partition", "Partitioning", "split_partition", "root_partition"]

#: Per-partition score memo bound: a partition rarely sees more than a couple
#: of distinct scoring functions in one session (the function under audit plus
#: a rank-derived variant); a small bound keeps weight sweeps from pinning
#: dozens of throwaway functions in memory.
_SCORE_MEMO_SLOTS = 4


@dataclass(frozen=True)
class Partition:
    """A group of individuals defined by protected-attribute constraints.

    Parameters
    ----------
    constraints:
        Ordered tuple of ``(attribute, value)`` pairs that every member
        satisfies.  The root partition (everyone) has no constraints.
    members:
        The sub-dataset of individuals in this partition.
    """

    constraints: Tuple[Tuple[str, object], ...]
    members: Dataset

    def __post_init__(self) -> None:
        object.__setattr__(self, "constraints", tuple(self.constraints))
        names = [name for name, _ in self.constraints]
        if len(set(names)) != len(names):
            raise PartitioningError(
                f"partition constrains the same attribute twice: {names}"
            )

    # -- identity -----------------------------------------------------------

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``"Gender=Male, Language=English"``."""
        if not self.constraints:
            return "ALL"
        return ", ".join(f"{name}={value}" for name, value in self.constraints)

    @property
    def key(self) -> Tuple[Tuple[str, object], ...]:
        """Hashable canonical identity (constraints sorted by attribute name).

        Cached: the score store keys its memos by partition identity, so the
        hot paths ask for the same key thousands of times per search.
        """
        cached = self.__dict__.get("_key_cache")
        if cached is None:
            cached = tuple(sorted(self.constraints, key=lambda pair: pair[0]))
            self.__dict__["_key_cache"] = cached
        return cached

    @property
    def size(self) -> int:
        """Number of individuals in the partition."""
        return len(self.members)

    @property
    def uids(self) -> Tuple[str, ...]:
        return self.members.uids

    @property
    def constrained_attributes(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.constraints)

    def constraint_value(self, attribute: str) -> object:
        """Value this partition fixes for ``attribute`` (raises if unconstrained)."""
        for name, value in self.constraints:
            if name == attribute:
                return value
        raise PartitioningError(f"partition {self.label!r} does not constrain {attribute!r}")

    # -- scores -------------------------------------------------------------

    def scores(
        self, function: ScoringFunction, store: Optional["ScoreStore"] = None
    ) -> np.ndarray:
        """Scores of the partition's members under ``function``.

        With a :class:`~repro.core.scorestore.ScoreStore` the scores are
        sliced from the store's materialized vector.  Without one, the result
        is memoised per function object on the partition itself, so the
        session layer's Node boxes (statistics + histogram + rendering) score
        each partition once instead of once per box.  Either way the returned
        array is read-only — every caller shares one vector.
        """
        if store is not None and store.serves(function):
            return store.scores(self)
        memo: Optional[Dict[ScoringFunction, np.ndarray]] = getattr(self, "_score_memo", None)
        if memo is not None:
            cached = memo.get(function)
            if cached is not None:
                return cached
        values = frozen_scores(function, self.members)
        # Copy-and-swap keeps concurrent readers safe: the memo dict is never
        # mutated in place, only atomically replaced.
        updated = dict(memo) if memo is not None else {}
        updated[function] = values
        while len(updated) > _SCORE_MEMO_SLOTS:
            updated.pop(next(iter(updated)))
        object.__setattr__(self, "_score_memo", updated)
        return values

    def histogram(
        self,
        function: ScoringFunction,
        binning: Optional[Binning] = None,
        store: Optional["ScoreStore"] = None,
    ) -> Histogram:
        """Score histogram of the partition's members (Definition 2's ``h(p, f)``)."""
        if store is not None and store.serves(function):
            return store.histogram(self, binning=binning)
        return build_histogram(self.scores(function), binning=binning)

    def statistics(
        self, function: ScoringFunction, store: Optional["ScoreStore"] = None
    ) -> Dict[str, float]:
        """Summary statistics shown in the session layer's Node box."""
        if store is not None and store.serves(function):
            return store.statistics(self)
        values = self.scores(function)
        if values.size == 0:
            return {"size": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "std": 0.0}
        return {
            "size": int(values.size),
            "mean": float(values.mean()),
            "min": float(values.min()),
            "max": float(values.max()),
            "std": float(values.std()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Partition({self.label!r}, n={self.size})"


def root_partition(dataset: Dataset) -> Partition:
    """The trivial partition containing every individual of ``dataset``."""
    return Partition(constraints=(), members=dataset)


def split_partition(
    partition: Partition, attribute: str, store: Optional["ScoreStore"] = None
) -> Tuple[Partition, ...]:
    """Split a partition into one child per distinct value of ``attribute``.

    Children are ordered by the attribute's declared domain order when
    available (falling back to a stable sorted order), matching the paper's
    decision-tree-style splits.  Only values present among the members yield
    children, so no child is ever empty.

    With a :class:`~repro.core.scorestore.ScoreStore` the split is performed
    over the store's integer-coded columns and row indices (same children, in
    the same order, with lazily materialised members) instead of a Python
    group-by — the store falls back to this path for unmappable partitions.
    """
    schema = partition.members.schema
    attr = schema.require_protected(attribute)
    if attribute in partition.constrained_attributes:
        raise PartitioningError(
            f"partition {partition.label!r} already constrains {attribute!r}"
        )
    if store is not None:
        children = store.split(partition, attr)
        if children is not None:
            return children
    groups = partition.members.group_by([attribute])
    ordered_values: List[object] = list(partition.members.distinct_values(attribute))
    children = []
    for value in ordered_values:
        members = groups[(value,)]
        children.append(
            Partition(
                constraints=partition.constraints + ((attr.name, value),),
                members=members,
            )
        )
    return tuple(children)


class Partitioning:
    """A full, disjoint set of partitions of one dataset.

    The constructor validates the Definition 1 constraints: partitions are
    pairwise disjoint and their union is the whole population.
    """

    def __init__(
        self,
        dataset: Dataset,
        partitions: Iterable[Partition],
        validate: bool = True,
    ) -> None:
        self.dataset = dataset
        self.partitions: Tuple[Partition, ...] = tuple(partitions)
        self._by_label: Optional[Dict[str, Partition]] = None
        self._by_uid: Optional[Dict[str, Partition]] = None
        if validate:
            self._validate()

    def _validate(self) -> None:
        if not self.partitions:
            raise PartitioningError("a partitioning must contain at least one partition")
        seen: Dict[str, str] = {}
        for partition in self.partitions:
            if partition.size == 0:
                raise PartitioningError(f"partition {partition.label!r} is empty")
            label = partition.label
            for uid in partition.uids:
                if uid in seen:
                    raise PartitioningError(
                        f"individual {uid!r} appears in both {seen[uid]!r} and "
                        f"{label!r}; partitions must be disjoint"
                    )
                seen[uid] = label
        missing = set(self.dataset.uids) - set(seen)
        if missing:
            raise PartitioningError(
                f"partitioning does not cover the whole population; missing ids: "
                f"{sorted(missing)[:5]}{'...' if len(missing) > 5 else ''}"
            )

    # -- protocol ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.partitions)

    def __iter__(self):
        return iter(self.partitions)

    def __getitem__(self, index: int) -> Partition:
        return self.partitions[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Partitioning({[p.label for p in self.partitions]})"

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(partition.label for partition in self.partitions)

    @property
    def sizes(self) -> Tuple[int, ...]:
        return tuple(partition.size for partition in self.partitions)

    def key(self) -> Tuple[Tuple[Tuple[str, object], ...], ...]:
        """Canonical hashable identity (sorted partition keys), for deduplication."""
        return tuple(sorted(partition.key for partition in self.partitions))

    def _label_index(self) -> Dict[str, Partition]:
        if self._by_label is None:
            self._by_label = {partition.label: partition for partition in self.partitions}
        return self._by_label

    def _uid_index(self) -> Dict[str, Partition]:
        if self._by_uid is None:
            self._by_uid = {
                uid: partition for partition in self.partitions for uid in partition.uids
            }
        return self._by_uid

    def find(self, label: str) -> Partition:
        """Return the partition with the given label (O(1) after the first call)."""
        try:
            return self._label_index()[label]
        except KeyError:
            raise PartitioningError(f"no partition labelled {label!r}") from None

    def partition_of(self, uid: str) -> Partition:
        """Return the partition containing individual ``uid`` (O(1) after the first call)."""
        try:
            return self._uid_index()[uid]
        except KeyError:
            raise PartitioningError(
                f"individual {uid!r} is not covered by this partitioning"
            ) from None

    def histograms(
        self,
        function: ScoringFunction,
        binning: Optional[Binning] = None,
        store: Optional["ScoreStore"] = None,
    ) -> Tuple[Histogram, ...]:
        """Score histogram of every partition, over a shared binning.

        Routed through each partition's cached score vector (or the given
        :class:`~repro.core.scorestore.ScoreStore`), so repeated histogram
        requests never trigger extra scoring passes.
        """
        return tuple(
            partition.histogram(function, binning=binning, store=store)
            for partition in self.partitions
        )

    def group_sizes(self) -> Dict[str, int]:
        """Mapping of partition label -> number of members."""
        return {partition.label: partition.size for partition in self.partitions}

    @classmethod
    def single(cls, dataset: Dataset) -> "Partitioning":
        """The trivial partitioning {W} (unfairness is zero by convention)."""
        return cls(dataset, (root_partition(dataset),))

    @classmethod
    def by_attributes(cls, dataset: Dataset, attributes: Sequence[str]) -> "Partitioning":
        """Partition by the full cross product of values of ``attributes``.

        This is the "pre-defined groups" construction of prior work (and the
        finest tree-structured partitioning over those attributes): one
        partition per observed combination of values.
        """
        dataset.require_non_empty()
        for attribute in attributes:
            dataset.schema.require_protected(attribute)
        if not attributes:
            return cls.single(dataset)
        groups = dataset.group_by(list(attributes))
        partitions = []
        for key, members in groups.items():
            constraints = tuple(zip(attributes, key))
            partitions.append(Partition(constraints=constraints, members=members))
        return cls(dataset, partitions)
