"""Core contribution: partitionings, unfairness, QUANTIFY and the exact baseline (S4-S7)."""

from repro.core.exhaustive import (
    ExhaustiveResult,
    count_partitionings,
    enumerate_partitionings,
    exhaustive_search,
)
from repro.core.formulations import (
    LEAST_UNFAIR_AVG_EMD,
    MOST_UNFAIR_AVG_EMD,
    Aggregation,
    Formulation,
    Objective,
    resolve_binning,
)
from repro.core.partition import Partition, Partitioning, root_partition, split_partition
from repro.core.problem import FairnessProblem
from repro.core.quantify import QuantifyResult, most_unfair_attribute, quantify
from repro.core.scorestore import ScoreStore, ScoreStoreStats
from repro.core.tree import PartitionNode, PartitionTree
from repro.core.unfairness import (
    UnfairnessBreakdown,
    pairwise_distances,
    partition_vs_siblings,
    unfairness,
    unfairness_breakdown,
)

__all__ = [
    "Partition",
    "Partitioning",
    "root_partition",
    "split_partition",
    "PartitionNode",
    "PartitionTree",
    "Objective",
    "Aggregation",
    "Formulation",
    "MOST_UNFAIR_AVG_EMD",
    "LEAST_UNFAIR_AVG_EMD",
    "resolve_binning",
    "ScoreStore",
    "ScoreStoreStats",
    "unfairness",
    "unfairness_breakdown",
    "UnfairnessBreakdown",
    "pairwise_distances",
    "partition_vs_siblings",
    "quantify",
    "QuantifyResult",
    "most_unfair_attribute",
    "exhaustive_search",
    "ExhaustiveResult",
    "enumerate_partitionings",
    "count_partitionings",
    "FairnessProblem",
]
