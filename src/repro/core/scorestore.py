"""Compute-once score materialization for the partitioning hot paths.

The QUANTIFY search (and everything layered on top of it — statistics boxes,
breakdowns, audits, comparisons) repeatedly asks for the scores of *subsets*
of one population under one scoring function: every candidate split, every
tree node, every sibling histogram re-walks the same individuals.  The
:class:`ScoreStore` removes that redundancy:

* the **full score vector** of the store's dataset is computed exactly once
  (one ``function.score_dataset`` pass) and every partition's scores are
  derived from it by uid-index slicing — bit-for-bit identical to scoring the
  partition directly, because each individual's score is a pure function of
  its own row;
* **histograms are memoised** keyed by ``(partition.key, binning)`` — the
  scoring function is fixed per store, and the service layer keys whole
  stores by ``(dataset fingerprint, function fingerprint)``, so the
  composite identity of a cached histogram is
  ``(dataset, function, partition, binning)`` as the paper's interactive
  workload demands.  Counts come from one ``searchsorted`` pass over the
  full vector per binning plus a ``bincount`` per partition, verified
  bin-for-bin identical to :func:`~repro.metrics.histogram.build_histogram`;
* **splits are index operations**: protected columns are integer-coded once,
  so splitting a partition on an attribute is a vectorised comparison over
  its row indices instead of a Python group-by, and the children's member
  datasets materialise lazily — a losing candidate split never builds its
  row tuples at all;
* the memo is **bounded** (LRU over partitions) so a long-lived service
  store cannot grow without limit, and every counter needed to audit the
  layer (scoring passes, slices, fallbacks, hits/misses/evictions) is
  exposed as an immutable :class:`ScoreStoreStats` snapshot.

A store only answers for partitions drawn from its own dataset.  Partitions
whose members cannot be mapped onto the store's rows (e.g. an anonymised
copy whose individuals were rewritten) fall back to direct scoring, so the
store is always safe to pass down a pipeline.

Thread safety: all mutation happens under one lock; score vectors, codes and
histogram values are immutable once published, so concurrent readers (the
service batch executor) can share one store.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.data.dataset import Dataset, Individual, order_values
from repro.data.schema import Attribute
from repro.errors import FaiRankError, WarmStartError
from repro.metrics.histogram import Binning, Histogram, build_histogram
from repro.obs.trace import span as trace_span
from repro.scoring.base import ScoringFunction, frozen_scores

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.partition import Partition

__all__ = ["STORE_BUNDLE_FORMAT", "STORE_BUNDLE_VERSION", "ScoreStore", "ScoreStoreStats"]

#: Identifies a persisted score-store bundle (arbitrary JSON is rejected loudly).
STORE_BUNDLE_FORMAT = "fairank-scorestore"

#: The bundle schema version this build writes (and the only one it reads).
STORE_BUNDLE_VERSION = 1

#: Default bound on memoised partitions per store.  A QUANTIFY search over a
#: 10k-row population touches a couple of thousand candidate partitions; the
#: default leaves headroom while keeping a long-lived service store bounded.
DEFAULT_MAX_PARTITIONS = 8192


@dataclass(frozen=True)
class ScoreStoreStats:
    """Immutable snapshot of one store's effectiveness counters.

    ``scoring_passes`` counts invocations of ``function.score_dataset`` —
    ideally exactly 1 (the materialization pass); ``fallback_scorings``
    counts partitions that could not be sliced and were scored directly.
    """

    scoring_passes: int = 0
    sliced_partitions: int = 0
    fallback_scorings: int = 0
    histogram_hits: int = 0
    histogram_misses: int = 0
    evictions: int = 0

    @property
    def histogram_requests(self) -> int:
        return self.histogram_hits + self.histogram_misses

    @property
    def histogram_hit_rate(self) -> float:
        """Fraction of histogram requests served from the memo."""
        total = self.histogram_requests
        return self.histogram_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "scoring_passes": self.scoring_passes,
            "sliced_partitions": self.sliced_partitions,
            "fallback_scorings": self.fallback_scorings,
            "histogram_hits": self.histogram_hits,
            "histogram_misses": self.histogram_misses,
            "evictions": self.evictions,
            "histogram_hit_rate": round(self.histogram_hit_rate, 4),
        }

    def describe(self) -> str:
        return (
            f"{self.scoring_passes} scoring pass(es), "
            f"{self.sliced_partitions} sliced / {self.fallback_scorings} fallback, "
            f"histograms {self.histogram_hits} hits / {self.histogram_misses} misses "
            f"({self.histogram_hit_rate:.0%}), {self.evictions} evictions"
        )


class _SlicedDataset(Dataset):
    """A Dataset defined by row indices into a base dataset, materialised lazily.

    The score store's splits produce one of these per child partition: the
    length (all a losing candidate split ever needs) is known immediately,
    while the actual row tuple is only built when a consumer — the final
    partitioning's validation, a renderer, a fallback scorer — iterates it.
    Holding the *base dataset* (not its row tuple) keeps the laziness
    transitive: slicing a column-backed base never forces it to materialise
    rows until a consumer iterates the slice itself.
    """

    def __init__(self, base: Dataset, indices: np.ndarray, name: str) -> None:
        # Deliberately does not call Dataset.__init__: rows are already
        # validated (they are the base dataset's own), and materialising the
        # member tuple is deferred until something iterates it.
        self.schema = base.schema
        self.name = name
        self._base = base
        self._slice_indices = indices

    @property
    def _individuals(self) -> Tuple[Individual, ...]:  # type: ignore[override]
        materialized = self.__dict__.get("_materialized")
        if materialized is None:
            rows = self._base.individuals
            materialized = tuple(rows[index] for index in self._slice_indices.tolist())
            self.__dict__["_materialized"] = materialized
        return materialized

    def __len__(self) -> int:
        return len(self._slice_indices)

    def __bool__(self) -> bool:
        return len(self._slice_indices) > 0


class _Entry:
    """Per-partition store entry: row indices, lazy scores, histogram memos.

    ``candidates`` memoises the outcome of candidate-split evaluation —
    ``(attribute, binning) -> (ordered values, child sizes, child
    histograms)`` — so re-running a search under a different formulation
    with the same binning reuses the whole per-split histogram batch.
    """

    __slots__ = ("indices", "owner", "scores", "histograms", "candidates", "bin_slices")

    def __init__(self, indices: Optional[np.ndarray], owner: Optional[Dataset] = None) -> None:
        self.indices = indices
        # For fallback entries (indices None) the exact members object the
        # entry answers for; mapped entries are validated via their indices.
        self.owner = owner
        self.scores: Optional[np.ndarray] = None
        self.histograms: Dict[Binning, Histogram] = {}
        self.candidates: Dict[
            Tuple[str, Binning],
            Tuple[Tuple[object, ...], Tuple[int, ...], Tuple[Histogram, ...]],
        ] = {}
        # binning -> this partition's slice of the per-row bin codes, shared
        # by every candidate attribute evaluated at this node.
        self.bin_slices: Dict[Binning, np.ndarray] = {}


def _binning_to_json(binning: Binning) -> Dict[str, object]:
    """A Binning as its (low, high, bins) triple — exact: JSON round-trips floats."""
    return {"low": binning.low, "high": binning.high, "bins": binning.bins}


def _binning_from_json(payload: Mapping[str, object]) -> Binning:
    return Binning(
        low=float(payload["low"]),  # type: ignore[arg-type]
        high=float(payload["high"]),  # type: ignore[arg-type]
        bins=int(payload["bins"]),  # type: ignore[arg-type]
    )


def _bundle_file(directory: Path, name: object) -> Path:
    """Resolve a manifest-referenced file name, refusing path escapes."""
    file_name = str(name)
    if Path(file_name).name != file_name:
        raise WarmStartError(
            f"score-store bundle references a non-local file {file_name!r}",
            reason="manifest",
        )
    return directory / file_name


def _read_array(
    directory: Path, name: object, dtype: type, rows: Optional[int]
) -> np.ndarray:
    """Read one raw ``.bin`` buffer, validating its exact element count.

    ``np.fromfile`` happily returns a short array for a truncated file, so
    the element count is checked explicitly — a partial ``.bin`` must fail
    the load (reason ``truncated``), never silently serve fewer rows.
    """
    path = _bundle_file(directory, name)
    try:
        data = np.fromfile(path, dtype=dtype)
    except OSError as error:
        raise WarmStartError(
            f"cannot read score-store buffer {path.name}: {error}", reason="truncated"
        ) from None
    if rows is not None and data.size != rows:
        raise WarmStartError(
            f"score-store buffer {path.name} holds {data.size} values, "
            f"expected {rows} (truncated or foreign bundle)",
            reason="truncated",
        )
    return data


class ScoreStore:
    """Materialized score vector + histogram memo for one (dataset, function).

    Parameters
    ----------
    dataset:
        The root population.  Every partition handed to the store should be
        drawn from this dataset (subsets produced by splitting/filtering it).
    function:
        The scoring function whose scores are materialized.
    max_partitions:
        LRU bound on the number of distinct partitions whose indices, scores
        and histograms are memoised; ``None`` disables the bound.
    trust_uids:
        When False (default), a partition is sliced only if its member
        *objects* are the store dataset's own rows — the safe setting for
        ad-hoc stores.  The service layer keys stores by content fingerprint
        and sets True, so content-identical datasets rebuilt between
        requests (re-filtered copies, re-parsed uploads) still share one
        scoring pass via uid mapping.
    """

    def __init__(
        self,
        dataset: Dataset,
        function: ScoringFunction,
        max_partitions: Optional[int] = DEFAULT_MAX_PARTITIONS,
        trust_uids: bool = False,
    ) -> None:
        if max_partitions is not None and max_partitions < 1:
            raise ValueError(f"max_partitions must be >= 1, got {max_partitions}")
        self.dataset = dataset
        self.function = function
        self.max_partitions = max_partitions
        self.trust_uids = trust_uids
        self._lock = threading.RLock()
        self._vector: Optional[np.ndarray] = None
        self._row_index: Optional[Dict[str, int]] = None
        self._partitions: "OrderedDict[object, _Entry]" = OrderedDict()
        # attribute name -> (per-row codes, code -> value, value -> code,
        # code -> member-dataset name suffix); see _attribute_codes.
        self._codes: Dict[
            str, Tuple[np.ndarray, Tuple[object, ...], Dict[object, int], Tuple[str, ...]]
        ] = {}
        # attribute name -> canonical full ordering of its values
        self._ordered: Dict[str, Tuple[object, ...]] = {}
        # binning -> per-row bin index (for bincount-based histograms)
        self._bin_codes: Dict[Binning, np.ndarray] = {}
        self._scoring_passes = 0
        self._sliced_partitions = 0
        self._fallback_scorings = 0
        self._histogram_hits = 0
        self._histogram_misses = 0
        self._evictions = 0
        # Functions (beyond self.function) verified fingerprint-equal, so
        # repeated serves() checks are an identity lookup.
        self._accepted_functions: Dict[ScoringFunction, bool] = {}
        self._own_fingerprint: Optional[str] = None

    def serves(self, function: ScoringFunction) -> bool:
        """Whether this store's materialized scores are valid for ``function``.

        True for the store's own function object, and for distinct objects
        that prove content equality via the ``fingerprint()`` protocol (the
        service pool hands out stores keyed by fingerprint, so a rebuilt but
        identical scorer must still be served).  Callers that receive False
        fall back to direct scoring — sharing a store across *different*
        functions must never silently serve the wrong scores.
        """
        if function is self.function:
            return True
        with self._lock:
            accepted = self._accepted_functions.get(function)
        if accepted is not None:
            return accepted
        try:
            own = self._own_fingerprint
            if own is None:
                own = str(self.function.fingerprint())
            matches = str(function.fingerprint()) == own
        except NotImplementedError:
            return False
        with self._lock:
            self._own_fingerprint = own
            if len(self._accepted_functions) >= 16:
                self._accepted_functions.pop(next(iter(self._accepted_functions)))
            self._accepted_functions[function] = matches
        return matches

    # -- the materialized vector ----------------------------------------------

    def vector(self) -> np.ndarray:
        """The full, read-only score vector of the store's dataset (row order).

        Computed lazily, exactly once; every subsequent partition score is a
        slice of this array.  The fast path is lock-free: the vector is
        immutable once published, so a plain read is safe under the GIL.
        """
        vector = self._vector
        if vector is not None:
            return vector
        with self._lock:
            if self._vector is None:
                # Timed into the active request trace (no-op outside one), so
                # a cold envelope's timings show its materialization cost.
                with trace_span("score"):
                    self._vector = frozen_scores(self.function, self.dataset)
                self._scoring_passes += 1
            return self._vector

    def _row_index_map(self) -> Dict[str, int]:
        """uid -> row position, built lazily (only uid-mapped partitions need it).

        Built from ``dataset.uids``, which a column-backed dataset serves
        without materialising rows.
        """
        index = self._row_index
        if index is not None:
            return index
        with self._lock:
            if self._row_index is None:
                self._row_index = {
                    uid: position for position, uid in enumerate(self.dataset.uids)
                }
            return self._row_index

    def _indices_for(self, partition: "Partition") -> Optional[np.ndarray]:
        """Row indices of the partition's members, or None if unmappable."""
        return self._indices_for_members(partition.members)

    def _indices_for_members(self, members: Dataset) -> Optional[np.ndarray]:
        if members is self.dataset:
            return np.arange(len(self.dataset), dtype=np.intp)
        if isinstance(members, _SlicedDataset) and members._base is self.dataset:
            return members._slice_indices
        row_index = self._row_index_map()
        # Identity verification (trust_uids=False) needs the actual row
        # objects; trusted stores map by uid alone, so a column-backed
        # dataset stays unmaterialised.
        rows = None if self.trust_uids else self.dataset.individuals
        indices = np.empty(len(members), dtype=np.intp)
        for position, member in enumerate(members):
            index = row_index.get(member.uid)
            if index is None:
                return None
            if rows is not None and rows[index] is not member:
                return None
            indices[position] = index
        return indices

    # -- partition-level access -------------------------------------------------

    def scores(self, partition: "Partition") -> np.ndarray:
        """Scores of the partition's members, sliced from the full vector.

        Bit-for-bit identical to ``partition.members`` scored directly.  A
        partition that cannot be mapped onto the store's rows is scored
        directly (counted as a fallback) so callers never need to care.
        """
        vector = self.vector()
        entry = self._entry(partition)
        with self._lock:
            values = entry.scores
            if values is None:
                if entry.indices is None:
                    values = frozen_scores(self.function, partition.members)
                elif partition.members is self.dataset:
                    values = vector  # the root partition: the full vector itself
                else:
                    values = vector[entry.indices]
                    values.setflags(write=False)
                entry.scores = values
            return values

    def histogram(self, partition: "Partition", binning: Optional[Binning] = None) -> Histogram:
        """Memoised score histogram of the partition over ``binning``.

        The memo key is ``(partition.key, binning)``; the same partition
        re-requested under the same binning (candidate splits, sibling sets,
        statistics boxes) is a hit.  Counts are produced by ``bincount`` over
        precomputed per-row bin indices — identical to
        :func:`~repro.metrics.histogram.build_histogram` on the same scores.
        """
        if binning is None:
            binning = Binning.unit()
        entry = self._entry(partition)
        with self._lock:
            cached = entry.histograms.get(binning)
            if cached is not None:
                self._histogram_hits += 1
                return cached
            self._histogram_misses += 1
        if entry.indices is None:
            histogram = build_histogram(self.scores(partition), binning=binning)
        else:
            codes = self._bin_codes_for(binning)
            # minlength covers the NaN sentinel bin; the slice discards it.
            counts = np.bincount(codes[entry.indices], minlength=binning.bins)
            histogram = Histogram(
                binning=binning, counts=tuple(int(c) for c in counts[: binning.bins])
            )
        with self._lock:
            return entry.histograms.setdefault(binning, histogram)

    def statistics(self, partition: "Partition") -> Dict[str, float]:
        """Summary statistics of the partition (mirrors ``Partition.statistics``)."""
        values = self.scores(partition)
        if values.size == 0:
            return {"size": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "std": 0.0}
        return {
            "size": int(values.size),
            "mean": float(values.mean()),
            "min": float(values.min()),
            "max": float(values.max()),
            "std": float(values.std()),
        }

    # -- index-based splitting ---------------------------------------------------

    def candidate_split(
        self, partition: "Partition", attr: Attribute, binning: Binning
    ) -> Optional[Tuple[Tuple[object, ...], Tuple[int, ...], Tuple[Histogram, ...]]]:
        """Evaluate splitting ``partition`` on ``attr`` without materialising it.

        Returns ``(ordered child values, child sizes, child histograms)`` —
        everything the greedy search needs to *score* a candidate split — or
        None when the partition cannot be mapped onto the store's rows.  The
        histograms come from one two-dimensional ``bincount`` over the
        partition's rows (value code × bin code), bit-identical to building
        each child and histogramming it, but with no per-child Python work;
        only the winning attribute ever becomes real :class:`Partition`
        objects (via :meth:`split`).  Results are memoised per
        ``(partition, attribute, binning)``.
        """
        entry = self._entry(partition)
        indices = entry.indices
        if indices is None:
            return None
        memo_key = (attr.name, binning)
        with self._lock:
            cached = entry.candidates.get(memo_key)
            if cached is not None:
                self._histogram_hits += len(cached[2])
                return cached
        codes, decode, encode, _ = self._attribute_codes(attr.name)
        ordered_all = self._ordered_values(attr)
        # Stride bins + 1: bin codes include the NaN sentinel ``bins``, which
        # must not spill into the next value's bin 0.
        stride = binning.bins + 1
        sub = codes[indices]
        bin_sub = entry.bin_slices.get(binning)
        if bin_sub is None:
            bin_sub = self._bin_codes_for(binning)[indices]
            entry.bin_slices[binning] = bin_sub
        counts = np.bincount(sub * stride + bin_sub, minlength=len(decode) * stride)
        counts = counts.reshape(len(decode), stride)
        # Sizes count members (including NaN-scored ones); histogram counts
        # drop the sentinel column, matching build_histogram's NaN handling.
        sizes = counts.sum(axis=1).tolist()
        counts_list = counts[:, : binning.bins].tolist()
        # order_values over a subset is a filter of the full ordering.
        ordered = tuple(value for value in ordered_all if sizes[encode[value]])
        child_sizes = []
        histograms = []
        for value in ordered:
            code = encode[value]
            child_sizes.append(sizes[code])
            # Trusted construction: bincount rows are valid histogram counts
            # by construction, so the dataclass validation is skipped.
            histogram = object.__new__(Histogram)
            object.__setattr__(histogram, "binning", binning)
            object.__setattr__(histogram, "counts", tuple(counts_list[code]))
            histograms.append(histogram)
        result = (ordered, tuple(child_sizes), tuple(histograms))
        with self._lock:
            result = entry.candidates.setdefault(memo_key, result)
            self._histogram_misses += len(result[2])
            return result

    def split(self, partition: "Partition", attr: Attribute) -> Optional[Tuple["Partition", ...]]:
        """Children of ``partition`` split on ``attr``, via index operations.

        Returns None when the partition cannot be mapped onto the store's
        rows (the caller then falls back to the group-by path).  Children are
        produced in the same order as :func:`~repro.core.partition.split_partition`
        (declared domain order, else stable sorted), their member datasets
        materialise lazily, and their store entries are pre-registered so the
        subsequent histogram/score requests skip uid mapping entirely.
        """
        from repro.core.partition import Partition

        entry = self._entry(partition)
        indices = entry.indices
        if indices is None:
            return None
        codes, decode, encode, suffixes = self._attribute_codes(attr.name)
        sub = codes[indices]
        present = {decode[code] for code in np.unique(sub).tolist()}
        ordered = tuple(v for v in self._ordered_values(attr) if v in present)
        children: List[Partition] = []
        entries: List[Tuple[object, np.ndarray]] = []
        base_name = partition.members.name
        constraints = partition.constraints
        attr_name = attr.name
        for value in ordered:
            code = encode[value]
            child_indices = indices[sub == code]
            members = _SlicedDataset(
                self.dataset, child_indices, name=base_name + suffixes[code]
            )
            # Fast construction: the dataclass __init__/__post_init__ only
            # normalises and validates the constraints, which hold here by
            # construction (the parent was valid and attr is new).
            child = object.__new__(Partition)
            object.__setattr__(child, "constraints", constraints + ((attr_name, value),))
            object.__setattr__(child, "members", members)
            children.append(child)
            entries.append((child.key, child_indices))
        with self._lock:
            partitions = self._partitions
            new_entries: List[_Entry] = []
            for (key, child_indices), child in zip(entries, children):
                child_entry = partitions.get(key)
                if child_entry is None or not self._entry_matches(child_entry, child.members):
                    child_entry = _Entry(child_indices)
                    partitions[key] = child_entry
                    self._sliced_partitions += 1
                new_entries.append(child_entry)
            # Seed the children's histogram memos from this partition's
            # candidate-split batches (same attribute, any binning), so the
            # winning split's histograms are never recomputed.
            for (cand_attr, binning), (values, _, batch) in entry.candidates.items():
                if cand_attr == attr.name and values == ordered:
                    for child_entry, histogram in zip(new_entries, batch):
                        child_entry.histograms.setdefault(binning, histogram)
            self._evict_over_bound_locked()
        return tuple(children)

    def _attribute_codes(
        self, name: str
    ) -> Tuple[np.ndarray, Tuple[object, ...], Dict[object, int], Tuple[str, ...]]:
        """Integer-coded column for ``name``, served by the dataset itself.

        Returns ``(per-row codes, code -> value, value -> code, code ->
        member-dataset name suffix)``; entries are immutable once published,
        so the fast path reads without the lock.  The coding lives on
        :meth:`Dataset.codes` now — a column-backed dataset already *stores*
        its protected attributes as integer codes, so this is a zero-copy
        read; a row-primary dataset computes and caches the coding once,
        shared across every store over the same dataset object (an audit
        fanning out over many functions codes each column once).
        """
        cached = self._codes.get(name)
        if cached is not None:
            return cached
        codes, decode, encode = self.dataset.codes(name)
        # The same "/(value,)" suffix Dataset.group_by gives a group's name.
        suffixes = tuple(f"/{(value,)}" for value in decode)
        cached = (codes, decode, encode, suffixes)
        with self._lock:
            return self._codes.setdefault(name, cached)

    def _ordered_values(self, attr: Attribute) -> Tuple[object, ...]:
        """Canonical ordering of every value of ``attr`` in the dataset, cached.

        ``order_values`` over any subset of an attribute's values is a filter
        of this full ordering, so splits never re-sort.
        """
        cached = self._ordered.get(attr.name)
        if cached is not None:
            return cached
        _, decode, _, _ = self._attribute_codes(attr.name)
        cached = order_values(attr, decode)
        with self._lock:
            return self._ordered.setdefault(attr.name, cached)

    def _bin_codes_for(self, binning: Binning) -> np.ndarray:
        """Per-row bin index of the full vector under ``binning``, cached.

        Matches ``np.histogram`` over explicit edges exactly: right-open bins
        with the final edge inclusive, values clipped into range first, and
        NaN scores dropped — they are assigned the sentinel code ``bins``,
        which every consumer discards (histogram rows/columns beyond
        ``bins - 1`` are sliced away).
        """
        cached = self._bin_codes.get(binning)
        if cached is not None:
            return cached
        vector = self.vector()
        edges = binning.edges
        clipped = np.clip(vector, edges[0], edges[-1])
        codes = np.searchsorted(edges, clipped, side="right") - 1
        np.clip(codes, 0, binning.bins - 1, out=codes)
        nan_rows = np.isnan(clipped)
        if nan_rows.any():
            codes[nan_rows] = binning.bins
        codes.setflags(write=False)
        with self._lock:
            return self._bin_codes.setdefault(binning, codes)

    # -- entry management --------------------------------------------------------

    def _entry_matches(self, entry: _Entry, members: Dataset) -> bool:
        """Whether a memoised entry really describes this partition's members.

        Partition keys are constraint tuples, so partitions of *different*
        datasets can share a key (e.g. every root partition has key ``()``).
        Reusing another dataset's entry would silently serve wrong scores, so
        every memo hit is validated — O(1) for partitions produced by this
        store's own splits (the common case), O(members) only for foreign
        objects that need uid re-mapping.
        """
        indices = entry.indices
        if indices is None:
            return entry.owner is members
        if members is self.dataset:
            return indices.size == len(self.dataset)
        if isinstance(members, _SlicedDataset) and members._base is self.dataset:
            own = members._slice_indices
            return own is indices or bool(np.array_equal(own, indices))
        if len(members) != indices.size:
            return False
        remapped = self._indices_for_members(members)
        return remapped is not None and bool(np.array_equal(remapped, indices))

    def _entry(self, partition: "Partition") -> _Entry:
        """The store entry for a partition, creating (and bounding) it once.

        An existing entry under the same key that belongs to a *different*
        population (see :meth:`_entry_matches`) is replaced rather than
        reused.
        """
        self.vector()
        key = partition.key
        members = partition.members
        with self._lock:
            entry = self._partitions.get(key)
            if entry is not None and self._entry_matches(entry, members):
                self._partitions.move_to_end(key)
                return entry
        indices = self._indices_for(partition)
        with self._lock:
            entry = self._partitions.get(key)
            if entry is None or not self._entry_matches(entry, members):
                entry = _Entry(indices, owner=members if indices is None else None)
                self._partitions[key] = entry
                if indices is None:
                    self._fallback_scorings += 1
                else:
                    self._sliced_partitions += 1
                self._evict_over_bound_locked()
            else:
                self._partitions.move_to_end(key)
            return entry

    def _evict_over_bound_locked(self) -> None:
        if self.max_partitions is not None:
            while len(self._partitions) > self.max_partitions:
                self._partitions.popitem(last=False)
                self._evictions += 1

    # -- persistence (warm-start bundles) ---------------------------------------

    @property
    def materialized(self) -> bool:
        """Whether the score vector has been computed (the store is warm)."""
        return self._vector is not None

    def save(self, directory: Union[str, Path]) -> Dict[str, object]:
        """Persist the store's hot state as raw ``.bin`` buffers + a manifest.

        Written (the raw-buffer-plus-manifest idiom of
        :class:`~repro.data.columns.ColumnStore`): the materialized score
        vector, the precomputed per-binning bin codes, and the histogram
        memo — partition keys, row indices and counts — for every sliced
        partition that has memoised histograms.  The manifest records the
        (dataset, function) content fingerprints, so a later
        :meth:`load` can verify the bundle still describes the live catalog
        content.  The manifest is written *last*: an interrupted save leaves
        no manifest, which a loader treats as "no bundle", never as state.

        Raises :class:`~repro.errors.WarmStartError` when the vector was
        never materialized (there is nothing warm to persist).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        from repro.service.fingerprint import fingerprint_dataset, fingerprint_function

        with self._lock:
            vector = self._vector
            if vector is None:
                raise WarmStartError(
                    "cannot save a score store before its vector is materialized",
                    reason="cold",
                )
            bin_codes = list(self._bin_codes.items())
            partitions = [
                (key, entry.indices, dict(entry.histograms))
                for key, entry in self._partitions.items()
                if entry.indices is not None and entry.histograms
            ]
        # File writes happen outside the lock: the captured arrays are
        # immutable once published, so serving continues while saving.
        np.ascontiguousarray(vector, dtype=np.float64).tofile(directory / "vector.bin")
        codes_manifest: List[Dict[str, object]] = []
        for index, (binning, codes) in enumerate(bin_codes):
            file_name = f"bins_{index}.bin"
            np.ascontiguousarray(codes, dtype=np.int64).tofile(directory / file_name)
            codes_manifest.append(
                {"binning": _binning_to_json(binning), "file": file_name}
            )
        memo_manifest: List[Dict[str, object]] = []
        for index, (key, indices, histograms) in enumerate(partitions):
            entry_json = {
                "key": [[attribute, value] for attribute, value in key],
                "indices": f"part_{index}.bin",
                "histograms": [
                    {"binning": _binning_to_json(binning), "counts": list(h.counts)}
                    for binning, h in histograms.items()
                ],
            }
            try:
                json.dumps(entry_json)
            # A partition constrained on a non-JSON value (exotic dataset
            # domain) is simply not persisted; everything else still is.
            # fairlint: disable=FL007 -- documented skip of one memo entry
            except (TypeError, ValueError):
                continue
            np.ascontiguousarray(indices, dtype=np.int64).tofile(
                directory / str(entry_json["indices"])
            )
            memo_manifest.append(entry_json)
        manifest: Dict[str, object] = {
            "format": STORE_BUNDLE_FORMAT,
            "version": STORE_BUNDLE_VERSION,
            "rows": int(vector.size),
            "dataset": self.dataset.name,
            "function": self.function.name,
            "dataset_fingerprint": fingerprint_dataset(self.dataset),
            "function_fingerprint": fingerprint_function(self.function),
            "vector": "vector.bin",
            "bin_codes": codes_manifest,
            "partitions": memo_manifest,
        }
        (directory / "manifest.json").write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )
        return manifest

    @classmethod
    def load(
        cls,
        directory: Union[str, Path],
        dataset: Dataset,
        function: ScoringFunction,
        *,
        max_partitions: Optional[int] = DEFAULT_MAX_PARTITIONS,
        trust_uids: bool = False,
    ) -> "ScoreStore":
        """Rebuild a warm store from :meth:`save` output, fingerprint-verified.

        The bundle's recorded (dataset, function) fingerprints must match
        the *live* objects, and every buffer must have exactly the recorded
        element count — drift, truncation or foreign content raises
        :class:`~repro.errors.WarmStartError` (with a stable ``reason``) so
        callers fall back to cold compute instead of serving wrong scores.
        The loaded vector does **not** count as a scoring pass:
        ``stats.scoring_passes`` stays 0 until a genuine recompute happens.
        """
        directory = Path(directory)
        from repro.service.fingerprint import fingerprint_dataset, fingerprint_function

        try:
            raw = (directory / "manifest.json").read_text(encoding="utf-8")
        except OSError as error:
            raise WarmStartError(
                f"cannot read score-store manifest in {directory}: {error}",
                reason="manifest",
            ) from None
        try:
            manifest = json.loads(raw)
        except ValueError as error:
            raise WarmStartError(
                f"score-store manifest in {directory} is not valid JSON: {error}",
                reason="manifest",
            ) from None
        if not isinstance(manifest, dict) or manifest.get("format") != STORE_BUNDLE_FORMAT:
            raise WarmStartError(
                f"{directory} does not hold a score-store bundle "
                f"(format {manifest.get('format') if isinstance(manifest, dict) else None!r})",
                reason="manifest",
            )
        if manifest.get("version") != STORE_BUNDLE_VERSION:
            raise WarmStartError(
                f"score-store bundle version {manifest.get('version')!r} is not "
                f"supported (this build reads version {STORE_BUNDLE_VERSION})",
                reason="manifest",
            )
        try:
            return cls._load_verified(
                directory, manifest, dataset, function,
                dataset_fingerprint=fingerprint_dataset(dataset),
                function_fingerprint=fingerprint_function(function),
                max_partitions=max_partitions,
                trust_uids=trust_uids,
            )
        except FaiRankError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            # A structurally mangled manifest (missing fields, wrong types)
            # is a bundle problem, not a caller bug.
            raise WarmStartError(
                f"score-store manifest in {directory} is malformed: {error!r}",
                reason="manifest",
            ) from None

    @classmethod
    def _load_verified(
        cls,
        directory: Path,
        manifest: Dict[str, object],
        dataset: Dataset,
        function: ScoringFunction,
        *,
        dataset_fingerprint: str,
        function_fingerprint: str,
        max_partitions: Optional[int],
        trust_uids: bool,
    ) -> "ScoreStore":
        rows = int(manifest["rows"])  # type: ignore[arg-type]
        if rows != len(dataset):
            raise WarmStartError(
                f"score-store bundle covers {rows} rows but dataset "
                f"{dataset.name!r} has {len(dataset)}",
                reason="fingerprint",
            )
        if manifest.get("dataset_fingerprint") != dataset_fingerprint:
            raise WarmStartError(
                f"score-store bundle was built over different dataset content "
                f"than the live {dataset.name!r} (fingerprint drift)",
                reason="fingerprint",
            )
        if manifest.get("function_fingerprint") != function_fingerprint:
            raise WarmStartError(
                f"score-store bundle was built for different function content "
                f"than the live {function.name!r} (fingerprint drift)",
                reason="fingerprint",
            )
        store = cls(
            dataset, function, max_partitions=max_partitions, trust_uids=trust_uids
        )
        vector = _read_array(directory, manifest["vector"], np.float64, rows)
        vector.setflags(write=False)
        # Assigned directly — a warm load is not a scoring pass, so the
        # store-pool accounting can prove a restarted fleet never re-scored.
        store._vector = vector
        for entry in manifest.get("bin_codes", ()):  # type: ignore[union-attr]
            binning = _binning_from_json(entry["binning"])
            codes = _read_array(directory, entry["file"], np.int64, rows)
            if codes.size and (codes.min() < 0 or codes.max() > binning.bins):
                raise WarmStartError(
                    f"score-store bin codes for {binning} fall outside "
                    f"[0, {binning.bins}] (corrupted bundle)",
                    reason="truncated",
                )
            codes = codes.astype(np.intp, copy=False)
            codes.setflags(write=False)
            store._bin_codes[binning] = codes
        for entry in manifest.get("partitions", ()):  # type: ignore[union-attr]
            key = tuple(
                (str(attribute), value) for attribute, value in entry["key"]
            )
            indices = _read_array(directory, entry["indices"], np.int64, None)
            if indices.size > rows or (
                indices.size and (indices.min() < 0 or indices.max() >= rows)
            ):
                raise WarmStartError(
                    f"score-store partition indices for key {key!r} fall outside "
                    f"the dataset's {rows} rows (corrupted bundle)",
                    reason="truncated",
                )
            indices = indices.astype(np.intp, copy=False)
            indices.setflags(write=False)
            loaded = _Entry(indices)
            for memo in entry.get("histograms", ()):
                binning = _binning_from_json(memo["binning"])
                loaded.histograms[binning] = Histogram(
                    binning=binning,
                    counts=tuple(int(count) for count in memo["counts"]),
                )
            store._partitions[key] = loaded
        store._evict_over_bound_locked()
        return store

    # -- introspection ----------------------------------------------------------

    @property
    def stats(self) -> ScoreStoreStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return ScoreStoreStats(
                scoring_passes=self._scoring_passes,
                sliced_partitions=self._sliced_partitions,
                fallback_scorings=self._fallback_scorings,
                histogram_hits=self._histogram_hits,
                histogram_misses=self._histogram_misses,
                evictions=self._evictions,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._partitions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScoreStore({self.dataset.name!r}, {self.function.name!r}, "
            f"{self.stats.describe()})"
        )

    def __iter__(self) -> Iterator[object]:
        """Iterate over the memoised partition keys (oldest first)."""
        with self._lock:
            return iter(list(self._partitions))
