"""Computing ``unfairness(P, f)`` for a partitioning under a formulation.

Definition 2 of the paper: the unfairness of a scoring function ``f`` for a
partitioning ``P`` is the average pairwise Earth Mover's Distance between the
score histograms of the partitions of ``P``.  Other aggregations and
distances come from the :class:`~repro.core.formulations.Formulation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.formulations import Formulation, MOST_UNFAIR_AVG_EMD, resolve_binning
from repro.core.partition import Partitioning
from repro.core.scorestore import ScoreStore
from repro.metrics.histogram import Binning, Histogram
from repro.scoring.base import ScoringFunction

__all__ = [
    "unfairness",
    "pairwise_distances",
    "cross_distances",
    "partition_vs_siblings",
    "UnfairnessBreakdown",
    "unfairness_breakdown",
]

#: Distances with a vectorised CDF-based fast path (1-D EMD closed form).
_EMD_LIKE = {"emd", "normalized_emd"}


def _emd_scale(formulation: Formulation, bins: int) -> float:
    """Per-distance scale factor for the vectorised EMD fast path."""
    if formulation.distance.name == "normalized_emd" and bins > 1:
        return 1.0 / (bins - 1)
    return 1.0


def _cdf_matrix(histograms: Sequence[Histogram]) -> np.ndarray:
    """Stack histogram CDFs (without the final all-ones column) row-wise.

    Each histogram's CDF is cached on the histogram itself, so memoised
    histograms (the score store serves the same objects to every sibling
    set) pay for their cumulative sum once per search.
    """
    count = len(histograms)
    matrix = np.empty((count, histograms[0].binning.bins - 1))
    for row, histogram in enumerate(histograms):
        matrix[row] = histogram.cdf()
    return matrix


def pairwise_distances(
    histograms: Sequence[Histogram],
    formulation: Formulation,
) -> List[float]:
    """All pairwise distances between the given histograms (i < j order).

    EMD-style distances use a vectorised closed form (L1 distance between
    CDFs, from cached per-histogram CDFs) so that the partitioning search
    stays interactive even when a node has many children; other distances
    fall back to pairwise calls.
    """
    count = len(histograms)
    if count < 2:
        return []
    if formulation.distance.name in _EMD_LIKE and count > 2:
        bins = histograms[0].binning.bins
        cdfs = _cdf_matrix(histograms)
        gaps = np.abs(cdfs[:, None, :] - cdfs[None, :, :]).sum(axis=2)
        scale = _emd_scale(formulation, bins)
        indices = np.triu_indices(count, k=1)
        return (gaps[indices] * scale).tolist()
    values: List[float] = []
    for i in range(count):
        for j in range(i + 1, count):
            values.append(formulation.distance(histograms[i], histograms[j]))
    return values


def cross_distances(
    first: Sequence[Histogram],
    second: Sequence[Histogram],
    formulation: Formulation,
) -> List[float]:
    """Distances between every histogram of ``first`` and every one of ``second``."""
    if not first or not second:
        return []
    if formulation.distance.name in _EMD_LIKE and (len(first) * len(second)) > 4:
        bins = first[0].binning.bins
        cdf_first = _cdf_matrix(first)
        cdf_second = _cdf_matrix(second)
        gaps = np.abs(cdf_first[:, None, :] - cdf_second[None, :, :]).sum(axis=2)
        scale = _emd_scale(formulation, bins)
        return [float(v) for v in gaps.ravel() * scale]
    return [
        formulation.distance(a, b)
        for a in first
        for b in second
    ]


def unfairness(
    partitioning: Partitioning,
    function: ScoringFunction,
    formulation: Formulation = MOST_UNFAIR_AVG_EMD,
    binning: Optional[Binning] = None,
    store: Optional[ScoreStore] = None,
) -> float:
    """``unfairness(P, f)``: aggregated pairwise histogram distance over ``P``.

    A partitioning with a single partition has unfairness 0 (there are no
    pairs to compare), matching the convention of the paper's optimisation
    problem where at least two groups are needed for unequal treatment.
    An explicit ``binning`` must agree with the formulation's (see
    :func:`~repro.core.formulations.resolve_binning`); a ``store`` serves
    the histograms from materialized scores.
    """
    effective = resolve_binning(formulation, binning)
    histograms = partitioning.histograms(function, binning=effective, store=store)
    return formulation.aggregate(pairwise_distances(histograms, formulation))


def partition_vs_siblings(
    partition_histogram: Histogram,
    sibling_histograms: Sequence[Histogram],
    formulation: Formulation,
) -> float:
    """Aggregated distance between one partition and each of its siblings.

    This is the quantity ``avg(EMD(current, siblings, f))`` used by
    Algorithm 1 to decide whether splitting ``current`` further increases
    unfairness.  With no siblings the value is 0.
    """
    values = cross_distances([partition_histogram], list(sibling_histograms), formulation)
    return formulation.aggregate(values)


@dataclass(frozen=True)
class UnfairnessBreakdown:
    """Detailed unfairness report for a partitioning (session-layer General box)."""

    value: float
    formulation_name: str
    partition_labels: Tuple[str, ...]
    partition_sizes: Tuple[int, ...]
    pairwise: Dict[Tuple[str, str], float]
    most_separated_pair: Optional[Tuple[str, str]]
    least_separated_pair: Optional[Tuple[str, str]]
    mean_scores: Dict[str, float]

    @property
    def most_favored(self) -> Optional[str]:
        """Label of the partition with the highest mean score."""
        if not self.mean_scores:
            return None
        return max(self.mean_scores, key=lambda label: self.mean_scores[label])

    @property
    def least_favored(self) -> Optional[str]:
        """Label of the partition with the lowest mean score."""
        if not self.mean_scores:
            return None
        return min(self.mean_scores, key=lambda label: self.mean_scores[label])

    def as_dict(self) -> Dict[str, object]:
        return {
            "unfairness": self.value,
            "formulation": self.formulation_name,
            "partitions": list(self.partition_labels),
            "sizes": list(self.partition_sizes),
            "most_favored": self.most_favored,
            "least_favored": self.least_favored,
            "most_separated_pair": self.most_separated_pair,
            "least_separated_pair": self.least_separated_pair,
        }


def unfairness_breakdown(
    partitioning: Partitioning,
    function: ScoringFunction,
    formulation: Formulation = MOST_UNFAIR_AVG_EMD,
    binning: Optional[Binning] = None,
    store: Optional[ScoreStore] = None,
) -> UnfairnessBreakdown:
    """Compute unfairness plus the per-pair and per-partition detail.

    The breakdown backs the auditor's fairness report: which pair of groups
    is most separated, which group is most / least favoured (highest / lowest
    mean score), and the individual pairwise distances.  The binning is
    resolved through :func:`~repro.core.formulations.resolve_binning`, so it
    always matches what ``quantify`` optimised; a ``store`` reuses the
    search's materialized scores instead of re-scoring every partition.
    """
    effective = resolve_binning(formulation, binning)
    histograms = partitioning.histograms(function, binning=effective, store=store)
    labels = partitioning.labels

    # pairwise_distances yields values in (i < j) order, matching
    # itertools-style combinations over the labels, so the vectorised EMD
    # fast path can be reused instead of the per-pair distance calls.
    values = pairwise_distances(histograms, formulation)
    label_pairs = [
        (labels[i], labels[j])
        for i in range(len(labels))
        for j in range(i + 1, len(labels))
    ]
    pairwise: Dict[Tuple[str, str], float] = dict(zip(label_pairs, values))

    most_separated = max(pairwise, key=lambda k: pairwise[k]) if pairwise else None
    least_separated = min(pairwise, key=lambda k: pairwise[k]) if pairwise else None

    mean_scores: Dict[str, float] = {}
    for partition, label in zip(partitioning, labels):
        scores = partition.scores(function, store=store)
        mean_scores[label] = float(scores.mean()) if scores.size else 0.0

    return UnfairnessBreakdown(
        value=formulation.aggregate(values),
        formulation_name=formulation.name,
        partition_labels=tuple(labels),
        partition_sizes=partitioning.sizes,
        pairwise=pairwise,
        most_separated_pair=most_separated,
        least_separated_pair=least_separated,
        mean_scores=mean_scores,
    )
