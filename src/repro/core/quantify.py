"""The greedy QUANTIFY algorithm (Algorithm 1 of the paper).

Exhaustively enumerating every full-disjoint partitioning of the population
over its protected attribute values is exponential; to keep response time
interactive FaiRank greedily grows a partitioning tree instead:

1. split the whole population on the *most unfair* attribute (the attribute
   whose split produces the most unfair set of children under the chosen
   formulation);
2. for each resulting partition, recursively decide whether to split it
   further: compute the unfairness of the local partitioning formed by the
   partition and its siblings (``currentAvg``), tentatively split it on the
   locally most unfair remaining attribute, compute the unfairness of the
   local partitioning with the partition replaced by its children
   (``childrenAvg``), and keep the split only if it improves the objective
   (for the most-unfair objective: ``childrenAvg > currentAvg``);
3. stop when no attributes remain or no split improves the objective.

This mirrors the local gain test of decision-tree induction.  The result is
returned both as a :class:`~repro.core.tree.PartitionTree` (what the UI
renders) and as the leaf :class:`~repro.core.partition.Partitioning`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.formulations import Formulation, MOST_UNFAIR_AVG_EMD, resolve_binning
from repro.core.partition import Partition, Partitioning, root_partition, split_partition
from repro.core.scorestore import ScoreStore
from repro.core.tree import PartitionNode, PartitionTree
from repro.core.unfairness import pairwise_distances, unfairness
from repro.data.dataset import Dataset
from repro.errors import PartitioningError
from repro.metrics.histogram import Histogram
from repro.scoring.base import ScoringFunction

__all__ = ["QuantifyResult", "quantify", "most_unfair_attribute"]


@dataclass
class QuantifyResult:
    """Output of the greedy QUANTIFY search.

    Attributes
    ----------
    tree:
        The partitioning tree grown by the algorithm (internal nodes record
        which attribute they were split on).
    partitioning:
        The final full-disjoint partitioning (the tree's leaves).
    unfairness:
        ``unfairness(P, f)`` of that partitioning under the formulation used.
    formulation:
        The formulation the search optimised.
    splits_evaluated:
        Number of candidate (partition, attribute) splits whose histograms
        were evaluated — the work measure reported by the scalability bench.
    """

    tree: PartitionTree
    partitioning: Partitioning
    unfairness: float
    formulation: Formulation
    splits_evaluated: int = 0

    @property
    def partition_labels(self) -> Tuple[str, ...]:
        return self.partitioning.labels

    def summary(self) -> Dict[str, object]:
        summary = self.tree.summary()
        summary["unfairness"] = self.unfairness
        summary["formulation"] = self.formulation.name
        summary["splits_evaluated"] = self.splits_evaluated
        return summary


class _SplitCounter:
    """Mutable counter shared across the recursion (explicit, no globals)."""

    def __init__(self) -> None:
        self.count = 0

    def add(self, amount: int = 1) -> None:
        self.count += amount


def _candidate_splits(
    partition: Partition,
    attributes: Sequence[str],
    min_partition_size: int = 1,
    store: Optional[ScoreStore] = None,
) -> Dict[str, Tuple[Partition, ...]]:
    """Single-attribute splits of ``partition`` with >= 2 admissible children.

    A split is admissible when every child keeps at least
    ``min_partition_size`` members, so the search never considers splits it
    would have to reject later.
    """
    candidates: Dict[str, Tuple[Partition, ...]] = {}
    for attribute in attributes:
        children = split_partition(partition, attribute, store=store)
        if len(children) < 2:
            continue
        if any(child.size < min_partition_size for child in children):
            continue
        candidates[attribute] = children
    return candidates


def _candidate_histograms(
    partition: Partition,
    attributes: Sequence[str],
    function: ScoringFunction,
    binning,
    min_partition_size: int,
    store: Optional[ScoreStore],
) -> Tuple[Dict[str, Tuple[Histogram, ...]], Dict[str, Tuple[Partition, ...]]]:
    """Admissible candidate splits as histogram batches, one per attribute.

    Returns ``(histograms per attribute, materialised children per
    attribute)``.  With a store that can map the partition, candidates are
    evaluated without materialising child partitions (the children mapping
    stays empty and the winner is materialised later by the caller); in every
    other case the children are built eagerly and their histograms derived
    from them — bit-identical either way.  Admissibility (>= 2 children,
    every child at least ``min_partition_size``) and the error on an
    already-constrained attribute are shared by both modes.
    """
    histograms: Dict[str, Tuple[Histogram, ...]] = {}
    children_of: Dict[str, Tuple[Partition, ...]] = {}
    if store is not None:
        schema = partition.members.schema
        evaluated: Optional[Dict[str, Tuple[Histogram, ...]]] = {}
        for attribute in attributes:
            attr = schema.require_protected(attribute)
            if attribute in partition.constrained_attributes:
                raise PartitioningError(
                    f"partition {partition.label!r} already constrains {attribute!r}"
                )
            candidate = store.candidate_split(partition, attr, binning)
            if candidate is None:
                # Unmappable partition: fall back to the materialising mode.
                evaluated = None
                break
            values, sizes, batch = candidate
            if len(values) < 2 or any(size < min_partition_size for size in sizes):
                continue
            assert evaluated is not None
            evaluated[attribute] = batch
        if evaluated is not None:
            return evaluated, children_of
    for attribute, children in _candidate_splits(
        partition, attributes, min_partition_size, store=store
    ).items():
        children_of[attribute] = children
        histograms[attribute] = tuple(
            child.histogram(function, binning=binning, store=store) for child in children
        )
    return histograms, children_of


def most_unfair_attribute(
    partition: Partition,
    function: ScoringFunction,
    attributes: Sequence[str],
    formulation: Formulation = MOST_UNFAIR_AVG_EMD,
    siblings: Sequence[Histogram] = (),
    counter: Optional[_SplitCounter] = None,
    min_partition_size: int = 1,
    store: Optional[ScoreStore] = None,
) -> Optional[Tuple[str, Tuple[Partition, ...], float]]:
    """Pick the attribute whose split of ``partition`` is best for the objective.

    Candidate splits are scored by the aggregated pairwise distance among the
    children *and* the existing siblings (when provided), i.e. the unfairness
    the overall partitioning would exhibit locally if the split were applied.
    Returns ``(attribute, children, score)`` or ``None`` when no attribute
    can split the partition into two or more children of at least
    ``min_partition_size`` members.  A :class:`~repro.core.scorestore.ScoreStore`
    serves every candidate's histograms from materialized scores, and only
    the winning attribute's children are ever materialised.
    """
    binning = resolve_binning(formulation)
    if store is not None and not store.serves(function):
        # A store built for a different function must never answer for this
        # one; fall back to direct scoring rather than serve wrong numbers.
        store = None
    evaluated, children_of = _candidate_histograms(
        partition, attributes, function, binning, min_partition_size, store
    )
    if not evaluated:
        return None

    best_attribute: Optional[str] = None
    best_score = 0.0
    for attribute in sorted(evaluated):
        child_histograms = evaluated[attribute]
        if counter is not None:
            counter.add(len(child_histograms))
        all_histograms = list(child_histograms) + list(siblings)
        score = formulation.aggregate(pairwise_distances(all_histograms, formulation))
        if best_attribute is None or formulation.is_better(score, best_score):
            best_attribute, best_score = attribute, score
    assert best_attribute is not None
    children = children_of.get(best_attribute)
    if children is None:
        children = split_partition(partition, best_attribute, store=store)
    return (best_attribute, children, best_score)


def _quantify_node(
    node: PartitionNode,
    sibling_histograms: Sequence[Histogram],
    function: ScoringFunction,
    attributes: Tuple[str, ...],
    formulation: Formulation,
    counter: _SplitCounter,
    max_depth: Optional[int],
    min_partition_size: int,
    depth: int,
    store: Optional[ScoreStore] = None,
) -> None:
    """Recursive body of Algorithm 1, growing the tree in place."""
    binning = resolve_binning(formulation)
    partition = node.partition

    if not attributes:
        return
    if max_depth is not None and depth >= max_depth:
        return
    if partition.size < 2 * min_partition_size:
        # Splitting cannot yield two children of at least min_partition_size.
        return

    current_histogram = partition.histogram(function, binning=binning, store=store)
    # currentAvg (Algorithm 1, line 4): the unfairness the local partitioning
    # {current} ∪ siblings exhibits, i.e. the aggregated pairwise distance
    # over that set of histograms.
    current_value = formulation.aggregate(
        pairwise_distances([current_histogram] + list(sibling_histograms), formulation)
    )
    node.annotation["vs_siblings"] = current_value

    choice = most_unfair_attribute(
        partition,
        function,
        attributes,
        formulation=formulation,
        siblings=sibling_histograms,
        counter=counter,
        min_partition_size=min_partition_size,
        store=store,
    )
    if choice is None:
        return
    attribute, children, _ = choice

    # childrenAvg (Algorithm 1, line 8): the unfairness the local partitioning
    # would exhibit if current were replaced by its children.
    child_histograms = [
        child.histogram(function, binning=binning, store=store) for child in children
    ]
    children_value = formulation.aggregate(
        pairwise_distances(child_histograms + list(sibling_histograms), formulation)
    )
    node.annotation["children_vs_siblings"] = children_value

    # Algorithm 1, line 9: keep the partition unless replacing it by its
    # children improves the objective of the local partitioning.  (With no
    # siblings this degenerates to "split only if the children differ at
    # all", since a single partition has zero unfairness.)
    if not formulation.is_better(children_value, current_value):
        return

    remaining = tuple(a for a in attributes if a != attribute)
    node.split_attribute = attribute
    child_nodes = [node.add_child(PartitionNode(partition=child)) for child in children]

    for index, child_node in enumerate(child_nodes):
        new_siblings = [h for i, h in enumerate(child_histograms) if i != index]
        _quantify_node(
            child_node,
            new_siblings,
            function,
            remaining,
            formulation,
            counter,
            max_depth,
            min_partition_size,
            depth + 1,
            store=store,
        )


def quantify(
    dataset: Dataset,
    function: ScoringFunction,
    formulation: Formulation = MOST_UNFAIR_AVG_EMD,
    attributes: Optional[Sequence[str]] = None,
    max_depth: Optional[int] = None,
    min_partition_size: int = 1,
    *,
    store: Optional[ScoreStore] = None,
    materialize: bool = True,
) -> QuantifyResult:
    """Run the greedy QUANTIFY search (Algorithm 1) end to end.

    Parameters
    ----------
    dataset:
        The individuals to partition.
    function:
        The scoring function under audit.
    formulation:
        Objective / aggregation / distance / binning (paper default:
        maximise the average pairwise EMD).
    attributes:
        Protected attributes the search may split on (default: every
        protected attribute of the dataset schema).
    max_depth:
        Optional cap on tree depth (number of nested splits).
    min_partition_size:
        Minimum number of individuals a partition must keep for a split to
        be considered (1 reproduces the paper exactly; larger values avoid
        singleton groups on large noisy datasets).
    store:
        Optional :class:`~repro.core.scorestore.ScoreStore` to serve scores
        and histograms from.  Pass the service layer's store to share one
        scoring pass across requests over the same (dataset, function).
    materialize:
        When True (default) and no ``store`` is given, a private store is
        created so the search scores each individual exactly once.  Set to
        False to force the direct re-scoring path (the pre-materialization
        behaviour, kept for benchmarking and debugging).

    Returns
    -------
    QuantifyResult
        Tree, leaf partitioning, its unfairness and search statistics.
    """
    dataset.require_non_empty()
    if min_partition_size < 1:
        raise PartitioningError(f"min_partition_size must be >= 1, got {min_partition_size}")
    if attributes is None:
        attributes = dataset.schema.protected_names
    else:
        for attribute in attributes:
            dataset.schema.require_protected(attribute)
        attributes = tuple(dict.fromkeys(attributes))
    if not attributes:
        raise PartitioningError("QUANTIFY needs at least one protected attribute to split on")

    counter = _SplitCounter()
    root = PartitionNode(partition=root_partition(dataset))
    binning = resolve_binning(formulation)
    if store is not None and not store.serves(function):
        store = None  # built for a different function: never serve its scores
    if store is None and materialize:
        store = ScoreStore(dataset, function)

    # First invocation (paper §3.2): split the whole population on the most
    # unfair attribute, then run the recursive procedure once per resulting
    # partition with the other partitions as its siblings.
    first_choice = most_unfair_attribute(
        root.partition,
        function,
        attributes,
        formulation=formulation,
        siblings=(),
        counter=counter,
        min_partition_size=min_partition_size,
        store=store,
    )
    if first_choice is not None:
        attribute, children, _ = first_choice
        root.split_attribute = attribute
        remaining = tuple(a for a in attributes if a != attribute)
        child_nodes = [root.add_child(PartitionNode(partition=child)) for child in children]
        child_histograms = [
            child.histogram(function, binning=binning, store=store) for child in children
        ]
        for index, child_node in enumerate(child_nodes):
            siblings = [h for i, h in enumerate(child_histograms) if i != index]
            _quantify_node(
                child_node,
                siblings,
                function,
                remaining,
                formulation,
                counter,
                max_depth,
                min_partition_size,
                depth=1,
                store=store,
            )

    tree = PartitionTree(root)
    # The tree was grown by recursive splits, so its leaves partition the
    # population by construction; re-validating would re-walk every uid.
    partitioning = tree.to_partitioning(validate=False)
    value = unfairness(partitioning, function, formulation, store=store)
    return QuantifyResult(
        tree=tree,
        partitioning=partitioning,
        unfairness=value,
        formulation=formulation,
        splits_evaluated=counter.count,
    )
