"""Partitioning trees.

The greedy algorithm explores partitionings that are *tree structured*: the
root is the whole population, each internal node is split on one protected
attribute, and the leaves form the final full-disjoint partitioning.  The
FaiRank interface displays exactly this tree ("The partitioning trees are
displayed on the right in multiple panels", Figure 3), so the tree is a
first-class object here — both the algorithm's output and the thing the
session layer renders and lets users click through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.partition import Partition, Partitioning
from repro.errors import PartitioningError

__all__ = ["PartitionNode", "PartitionTree"]


@dataclass
class PartitionNode:
    """A node of a partitioning tree.

    ``split_attribute`` is the protected attribute the node was split on
    (None for leaves).  ``children`` are ordered by the attribute's value
    order.  A node is a *leaf* when it has no children; the set of leaves of
    the tree is the output partitioning.
    """

    partition: Partition
    split_attribute: Optional[str] = None
    children: List["PartitionNode"] = field(default_factory=list)
    #: Unfairness-related annotation filled by the algorithms (e.g. the
    #: aggregated distance of this node to its siblings when the split
    #: decision was made).  Purely informational.
    annotation: Dict[str, float] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def label(self) -> str:
        return self.partition.label

    @property
    def size(self) -> int:
        return self.partition.size

    def add_child(self, child: "PartitionNode") -> "PartitionNode":
        self.children.append(child)
        return child

    def iter_nodes(self) -> Iterator["PartitionNode"]:
        """Pre-order traversal of this subtree."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def leaves(self) -> List["PartitionNode"]:
        """Leaves of this subtree, left to right."""
        return [node for node in self.iter_nodes() if node.is_leaf]

    def depth(self) -> int:
        """Height of this subtree (a leaf has depth 0)."""
        if self.is_leaf:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def find(self, label: str) -> Optional["PartitionNode"]:
        """Find a node by partition label (None if absent)."""
        for node in self.iter_nodes():
            if node.label == label:
                return node
        return None


class PartitionTree:
    """A rooted partitioning tree plus convenience accessors.

    The tree owns the root node; its leaves always form a valid full-disjoint
    partitioning of the root's members (enforced by construction because
    splits never drop individuals).
    """

    def __init__(self, root: PartitionNode) -> None:
        if root is None:
            raise PartitioningError("a partition tree needs a root node")
        self.root = root

    # -- structure ------------------------------------------------------------

    @property
    def dataset(self):
        return self.root.partition.members

    def leaves(self) -> List[PartitionNode]:
        return self.root.leaves()

    def nodes(self) -> List[PartitionNode]:
        return list(self.root.iter_nodes())

    def node_count(self) -> int:
        return sum(1 for _ in self.root.iter_nodes())

    def depth(self) -> int:
        return self.root.depth()

    def find(self, label: str) -> PartitionNode:
        node = self.root.find(label)
        if node is None:
            raise PartitioningError(f"no node labelled {label!r} in the tree")
        return node

    def split_attributes_used(self) -> Tuple[str, ...]:
        """Distinct attributes used by any split, in first-use (pre-order) order."""
        used: List[str] = []
        for node in self.root.iter_nodes():
            if node.split_attribute and node.split_attribute not in used:
                used.append(node.split_attribute)
        return tuple(used)

    # -- conversion -------------------------------------------------------------

    def to_partitioning(self, validate: bool = True) -> Partitioning:
        """The full-disjoint partitioning formed by the tree's leaves.

        ``validate=False`` skips the disjoint-cover check — safe when the
        tree was grown by recursive splits (QUANTIFY does this), where the
        leaves partition the population by construction.
        """
        return Partitioning(
            dataset=self.root.partition.members,
            partitions=tuple(leaf.partition for leaf in self.leaves()),
            validate=validate,
        )

    def summary(self) -> Dict[str, object]:
        """Summary used by the session layer's General box."""
        leaves = self.leaves()
        return {
            "partitions": len(leaves),
            "depth": self.depth(),
            "nodes": self.node_count(),
            "split_attributes": list(self.split_attributes_used()),
            "partition_sizes": {leaf.label: leaf.size for leaf in leaves},
        }

    @classmethod
    def from_partitioning(cls, partitioning: Partitioning) -> "PartitionTree":
        """Build a flat (depth-1) tree from an existing partitioning.

        Used to display baselines (pre-defined groups) in the same panels as
        algorithm outputs.
        """
        from repro.core.partition import root_partition

        root = PartitionNode(partition=root_partition(partitioning.dataset))
        if len(partitioning) == 1 and partitioning[0].constraints == ():
            return cls(root)
        attrs = {name for partition in partitioning for name, _ in partition.constraints}
        root.split_attribute = "+".join(sorted(attrs)) if attrs else None
        for partition in partitioning:
            root.add_child(PartitionNode(partition=partition))
        return cls(root)
