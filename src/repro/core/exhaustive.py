"""Exhaustive enumeration of tree-structured partitionings (exact baseline).

"To identify the most unfair partitioning, one must exhaust all possible full
disjoint partitionings of individuals based on their protected attributes"
(paper §3.1) — which is exponential in the number of protected attribute
values, and is exactly why the greedy Algorithm 1 exists.  This module
implements that exhaustive search so the reproduction can measure how close
the greedy heuristic gets to the true optimum and how much faster it is
(experiment E4 of DESIGN.md).

The enumerated space is the space the greedy algorithm searches over:
*hierarchical* partitionings in which a group is either kept whole or split
by one of the remaining protected attributes, recursively (each branch may
use a different attribute order).  This matches the paper's decision-tree
framing of the problem and keeps the optimum comparable to the greedy output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.core.formulations import Formulation, MOST_UNFAIR_AVG_EMD
from repro.core.partition import Partition, Partitioning, root_partition, split_partition
from repro.core.scorestore import ScoreStore
from repro.core.unfairness import unfairness
from repro.data.dataset import Dataset
from repro.errors import PartitioningError
from repro.scoring.base import ScoringFunction

__all__ = [
    "ExhaustiveResult",
    "enumerate_partitionings",
    "exhaustive_search",
    "count_partitionings",
]


@dataclass
class ExhaustiveResult:
    """Output of the exhaustive search.

    ``partitioning``/``unfairness`` describe the optimum; ``explored`` is the
    number of distinct full-disjoint partitionings whose unfairness was
    evaluated (the cost the greedy heuristic avoids).
    """

    partitioning: Partitioning
    unfairness: float
    formulation: Formulation
    explored: int

    def summary(self) -> Dict[str, object]:
        return {
            "unfairness": self.unfairness,
            "partitions": len(self.partitioning),
            "labels": list(self.partitioning.labels),
            "explored": self.explored,
            "formulation": self.formulation.name,
        }


def _enumerate_group(
    partition: Partition, attributes: Tuple[str, ...]
) -> Iterator[Tuple[Partition, ...]]:
    """All hierarchical partitionings of one group over the given attributes.

    Yields tuples of leaf partitions.  The group can always be kept whole;
    otherwise it is split on any one attribute and the children's
    sub-partitionings are combined in every possible way.
    """
    yield (partition,)
    if partition.size < 2:
        return
    for attribute in attributes:
        children = split_partition(partition, attribute)
        if len(children) < 2:
            continue
        remaining = tuple(a for a in attributes if a != attribute)
        yield from _combine_children(children, remaining, index=0, prefix=())


def _combine_children(
    children: Tuple[Partition, ...],
    attributes: Tuple[str, ...],
    index: int,
    prefix: Tuple[Partition, ...],
) -> Iterator[Tuple[Partition, ...]]:
    """Cartesian product of the sub-partitionings of each child."""
    if index == len(children):
        yield prefix
        return
    for sub in _enumerate_group(children[index], attributes):
        yield from _combine_children(children, attributes, index + 1, prefix + sub)


def enumerate_partitionings(
    dataset: Dataset,
    attributes: Optional[Sequence[str]] = None,
    require_multiple: bool = True,
    limit: Optional[int] = None,
) -> Iterator[Partitioning]:
    """Enumerate distinct full-disjoint hierarchical partitionings of ``dataset``.

    Parameters
    ----------
    dataset:
        The population to partition.
    attributes:
        Protected attributes to consider (default: all).
    require_multiple:
        Skip the trivial single-partition partitioning (whose unfairness is 0
        and which is never a meaningful "most unfair" answer).
    limit:
        Safety cap on the number of partitionings yielded; exceeding it
        raises :class:`PartitioningError` so callers notice they asked for an
        infeasible enumeration instead of silently truncating the search.
    """
    dataset.require_non_empty()
    if attributes is None:
        attributes = dataset.schema.protected_names
    else:
        for attribute in attributes:
            dataset.schema.require_protected(attribute)
    attributes = tuple(dict.fromkeys(attributes))

    seen: set = set()
    produced = 0
    root = root_partition(dataset)
    for leaves in _enumerate_group(root, attributes):
        if require_multiple and len(leaves) < 2:
            continue
        partitioning = Partitioning(dataset, leaves, validate=False)
        key = partitioning.key()
        if key in seen:
            continue
        seen.add(key)
        produced += 1
        if limit is not None and produced > limit:
            raise PartitioningError(
                f"exhaustive enumeration exceeded the limit of {limit} partitionings; "
                "reduce the number of protected attributes or use quantify() instead"
            )
        yield partitioning


def count_partitionings(
    dataset: Dataset,
    attributes: Optional[Sequence[str]] = None,
    limit: Optional[int] = 1_000_000,
) -> int:
    """Number of distinct hierarchical partitionings (the search-space size)."""
    return sum(
        1
        for _ in enumerate_partitionings(
            dataset, attributes=attributes, require_multiple=True, limit=limit
        )
    )


def exhaustive_search(
    dataset: Dataset,
    function: ScoringFunction,
    formulation: Formulation = MOST_UNFAIR_AVG_EMD,
    attributes: Optional[Sequence[str]] = None,
    limit: Optional[int] = 200_000,
    *,
    store: Optional[ScoreStore] = None,
    materialize: bool = True,
) -> ExhaustiveResult:
    """Find the exact optimum partitioning by enumerating the whole space.

    Ties are broken in favour of the partitioning with fewer partitions
    (simpler explanations first), then by label order, so results are
    deterministic across runs.

    The same leaf partitions recur in exponentially many enumerated
    partitionings, so the search materializes scores once in a
    :class:`~repro.core.scorestore.ScoreStore` (pass ``materialize=False``
    for the direct re-scoring path, or ``store=`` to share an existing one).
    """
    if store is not None and not store.serves(function):
        store = None  # built for a different function: never serve its scores
    if store is None and materialize:
        store = ScoreStore(dataset, function)
    best_partitioning: Optional[Partitioning] = None
    best_value = 0.0
    explored = 0
    for partitioning in enumerate_partitionings(
        dataset, attributes=attributes, require_multiple=True, limit=limit
    ):
        explored += 1
        value = unfairness(partitioning, function, formulation, store=store)
        if best_partitioning is None:
            best_partitioning, best_value = partitioning, value
            continue
        if formulation.is_better(value, best_value):
            best_partitioning, best_value = partitioning, value
        elif abs(value - best_value) <= 1e-12:
            candidate_key = (len(partitioning), partitioning.labels)
            incumbent_key = (len(best_partitioning), best_partitioning.labels)
            if candidate_key < incumbent_key:
                best_partitioning, best_value = partitioning, value

    if best_partitioning is None:
        # No attribute can split the population (all constant): the only
        # partitioning is the trivial one.
        best_partitioning = Partitioning.single(dataset)
        best_value = 0.0
        explored = 1

    return ExhaustiveResult(
        partitioning=best_partitioning,
        unfairness=best_value,
        formulation=formulation,
        explored=explored,
    )
