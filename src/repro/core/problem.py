"""Problem statements: the (Most/Least) Unfair Partitioning Problem.

This module packages Definition 1 of the paper as a value object: a dataset,
a scoring function, the protected attributes in play, and the unfairness
formulation to optimise.  A :class:`FairnessProblem` can be solved either
with the greedy heuristic (:func:`~repro.core.quantify.quantify`) or exactly
(:func:`~repro.core.exhaustive.exhaustive_search`), and remembers enough
context to be re-solved under a different formulation — which is exactly the
"modify the scoring function or the fairness formulation and obtain several
panels" interaction of the demo.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple, Union

from repro.core.exhaustive import ExhaustiveResult, exhaustive_search
from repro.core.formulations import Formulation, MOST_UNFAIR_AVG_EMD, Objective
from repro.core.quantify import QuantifyResult, quantify
from repro.data.dataset import Dataset
from repro.data.filters import Filter, TrueFilter, apply_filter
from repro.errors import PartitioningError
from repro.scoring.base import ScoringFunction
from repro.scoring.linear import LinearScoringFunction

__all__ = ["FairnessProblem", "SolveMethod"]

SolveMethod = Union[QuantifyResult, ExhaustiveResult]


@dataclass(frozen=True)
class FairnessProblem:
    """An instance of the (Most/Least) Unfair Partitioning Problem.

    Attributes
    ----------
    dataset:
        The population of individuals W.
    function:
        The scoring function f under audit.
    formulation:
        Objective, aggregation, distance and binning.
    attributes:
        The protected attributes A the partitioning may use (None = all
        protected attributes of the dataset schema).
    row_filter:
        Optional pre-filter on the population (e.g. "only individuals who
        speak Arabic"), applied before partitioning.
    """

    dataset: Dataset
    function: ScoringFunction
    formulation: Formulation = MOST_UNFAIR_AVG_EMD
    attributes: Optional[Tuple[str, ...]] = None
    row_filter: Filter = TrueFilter()

    def __post_init__(self) -> None:
        if self.attributes is not None:
            object.__setattr__(self, "attributes", tuple(self.attributes))
            for attribute in self.attributes:
                self.dataset.schema.require_protected(attribute)
        if isinstance(self.function, LinearScoringFunction):
            self.function.validate_against(self.dataset.schema)

    # -- derived views ---------------------------------------------------------

    @property
    def population(self) -> Dataset:
        """The dataset after applying the row filter."""
        if isinstance(self.row_filter, TrueFilter):
            return self.dataset
        filtered = apply_filter(self.dataset, self.row_filter)
        if not len(filtered):
            raise PartitioningError(
                f"the filter ({self.row_filter.describe()}) matches no individuals"
            )
        return filtered

    @property
    def protected_attributes(self) -> Tuple[str, ...]:
        """The attributes the partitioning may split on."""
        if self.attributes is not None:
            return self.attributes
        return self.dataset.schema.protected_names

    def describe(self) -> str:
        parts = [
            f"population: {self.dataset.name} (n={len(self.dataset)})",
            f"scoring function: {self.function.describe()}",
            f"formulation: {self.formulation.describe()}",
            f"protected attributes: {', '.join(self.protected_attributes)}",
        ]
        if not isinstance(self.row_filter, TrueFilter):
            parts.append(f"filter: {self.row_filter.describe()}")
        return "\n".join(parts)

    # -- variants ---------------------------------------------------------------

    def with_function(self, function: ScoringFunction) -> "FairnessProblem":
        """Same problem, different scoring function (job-owner exploration)."""
        return replace(self, function=function)

    def with_formulation(self, formulation: Formulation) -> "FairnessProblem":
        """Same problem, different fairness formulation."""
        return replace(self, formulation=formulation)

    def with_filter(self, row_filter: Filter) -> "FairnessProblem":
        """Same problem, restricted to a sub-population."""
        return replace(self, row_filter=row_filter)

    def with_objective(self, objective: Objective) -> "FairnessProblem":
        """Flip between the most- and least-unfair variants."""
        return replace(self, formulation=self.formulation.with_objective(objective))

    # -- solving -----------------------------------------------------------------

    def solve(
        self,
        max_depth: Optional[int] = None,
        min_partition_size: int = 1,
    ) -> QuantifyResult:
        """Solve with the greedy QUANTIFY heuristic (the paper's algorithm)."""
        return quantify(
            self.population,
            self.function,
            formulation=self.formulation,
            attributes=self.protected_attributes,
            max_depth=max_depth,
            min_partition_size=min_partition_size,
        )

    def solve_exactly(self, limit: Optional[int] = 200_000) -> ExhaustiveResult:
        """Solve by exhaustive enumeration (exponential; small instances only)."""
        return exhaustive_search(
            self.population,
            self.function,
            formulation=self.formulation,
            attributes=self.protected_attributes,
            limit=limit,
        )
