"""``repro.analysis`` — the repo-aware static analysis plane.

A stdlib-only (``ast`` + ``tokenize``) lint framework whose rule pack
encodes this repository's *real* invariants — lock discipline, hot-path
columnar purity, canonical-envelope stability, fingerprint completeness,
metrics naming, thread hygiene, swallowed exceptions — plus a format
floor that replaces the advisory ruff step with a gate that runs anywhere
Python does.  See ``docs/ANALYSIS.md`` for the rule catalogue, the
``# fairlint: disable=`` suppression syntax and the baseline ratchet.

Entry points: ``fairank lint`` (CLI) and ``scripts/check_analysis.py``
(CI gate); both drive :func:`repro.analysis.engine.run_analysis`.
"""

from repro.analysis.baseline import Baseline, BaselineDiff, baseline_from_findings
from repro.analysis.engine import (
    DEFAULT_BASELINE_NAME,
    DEFAULT_TARGETS,
    AnalysisReport,
    run_analysis,
    update_baseline,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, all_rules, get_rule, register, rule_ids

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineDiff",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_TARGETS",
    "Finding",
    "Rule",
    "all_rules",
    "baseline_from_findings",
    "get_rule",
    "register",
    "rule_ids",
    "run_analysis",
    "update_baseline",
]
