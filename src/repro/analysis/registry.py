"""Rule registry: every lint rule self-registers under a stable id.

A rule is one class with an ``id`` (``FLnnn``), a short ``name``, a
``severity``, a human ``description`` and a ``check_module`` method
yielding :class:`~repro.analysis.findings.Finding` objects.  The registry
is the single source of truth for which ids exist — the docs gate
(``scripts/check_docs.py``) cross-checks every ``FLnnn`` mentioned in
``docs/*.md`` against it.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Type

from repro.analysis.findings import SEVERITIES, Finding
from repro.analysis.source import Project, SourceModule

__all__ = ["Rule", "all_rules", "get_rule", "register", "rule_ids"]

_RULE_ID = re.compile(r"^FL\d{3}$")

_RULES: Dict[str, "Rule"] = {}
_LOADED = False


class Rule:
    """Base class for one lint rule (subclass and ``@register``)."""

    id: str = ""
    name: str = ""
    severity: str = "error"
    description: str = ""

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, module: SourceModule, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=module.rel,
            line=line,
            col=col,
            rule=self.id,
            message=message,
            severity=self.severity,
        )


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate the rule and add it to the registry."""
    rule = rule_class()
    if not _RULE_ID.match(rule.id):
        raise ValueError(f"rule id {rule.id!r} does not match FLnnn")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"rule {rule.id} has unknown severity {rule.severity!r}")
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    _RULES[rule.id] = rule
    return rule_class


def _ensure_loaded() -> None:
    global _LOADED
    if not _LOADED:
        _LOADED = True
        # Importing the package registers every shipped rule.
        import repro.analysis.rules  # noqa: F401


def all_rules() -> List[Rule]:
    _ensure_loaded()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def rule_ids() -> List[str]:
    return [rule.id for rule in all_rules()]


def get_rule(rule_id: str) -> Rule:
    _ensure_loaded()
    try:
        return _RULES[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule id {rule_id!r}") from None
