"""The committed ratchet: legacy findings are masked, new ones fail.

A baseline is a JSON map of ``path -> rule -> count``.  Counts (rather
than line numbers) make the mask robust to unrelated edits shifting code
around, while still ratcheting: when a legacy violation is fixed the
baseline entry becomes *stale*, and the CI gate fails until the baseline
is regenerated with ``fairank lint --update-baseline`` — so the count can
only go down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.findings import Finding

__all__ = ["Baseline", "BaselineDiff", "baseline_from_findings"]

_VERSION = 1


@dataclass(frozen=True)
class BaselineDiff:
    """The outcome of checking findings against a baseline."""

    new: Tuple[Finding, ...]
    masked: Tuple[Finding, ...]
    #: ``(path, rule, unmatched_count)`` entries whose violations no longer
    #: exist — the ratchet: regenerate the baseline to shrink it.
    stale: Tuple[Tuple[str, str, int], ...]


@dataclass
class Baseline:
    """``entries[path][rule] = count`` of tolerated legacy findings."""

    entries: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or payload.get("version") != _VERSION:
            raise ValueError(
                f"{path}: not a fairlint baseline "
                f"(expected a JSON object with version={_VERSION})"
            )
        raw = payload.get("entries", {})
        entries: Dict[str, Dict[str, int]] = {}
        for file_path, rules in raw.items():
            entries[str(file_path)] = {
                str(rule): int(count) for rule, count in rules.items()
            }
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        Path(path).write_text(self.to_text(), encoding="utf-8")

    def to_text(self) -> str:
        payload = {
            "version": _VERSION,
            "entries": {
                file_path: {
                    rule: count
                    for rule, count in sorted(self.entries[file_path].items())
                    if count > 0
                }
                for file_path in sorted(self.entries)
                if any(count > 0 for count in self.entries[file_path].values())
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @property
    def total(self) -> int:
        return sum(
            count for rules in self.entries.values() for count in rules.values()
        )

    def diff(self, findings: Iterable[Finding]) -> BaselineDiff:
        """Split findings into baseline-masked and new; report stale slack."""
        remaining = {
            file_path: dict(rules) for file_path, rules in self.entries.items()
        }
        new: List[Finding] = []
        masked: List[Finding] = []
        for finding in sorted(findings):
            budget = remaining.get(finding.path, {})
            if budget.get(finding.rule, 0) > 0:
                budget[finding.rule] -= 1
                masked.append(finding)
            else:
                new.append(finding)
        stale = tuple(
            (file_path, rule, count)
            for file_path in sorted(remaining)
            for rule, count in sorted(remaining[file_path].items())
            if count > 0
        )
        return BaselineDiff(new=tuple(new), masked=tuple(masked), stale=stale)


def baseline_from_findings(findings: Iterable[Finding]) -> Baseline:
    """The baseline that exactly masks ``findings`` (``--update-baseline``)."""
    entries: Dict[str, Dict[str, int]] = {}
    for finding in findings:
        rules = entries.setdefault(finding.path, {})
        rules[finding.rule] = rules.get(finding.rule, 0) + 1
    return Baseline(entries=entries)
