"""Parsed source artefacts handed to rules.

A :class:`SourceModule` wraps one Python file: raw bytes, decoded text,
physical lines, and lazily-built ``ast`` / ``tokenize`` views (a file that
does not parse still reaches the text-level format rules).  A
:class:`Project` wraps the repository root and caches the documentation
files that cross-checking rules (FL003, FL005) read.
"""

from __future__ import annotations

import ast
import io
import tokenize
from pathlib import Path
from typing import List, Optional, Set, Tuple

__all__ = ["Project", "SourceModule"]

_MISSING = object()


class SourceModule:
    """One Python source file plus its parsed views.

    ``rel`` is the POSIX repository-relative path; rules scope themselves
    by matching against it (e.g. ``module.in_path("repro/core")``), so the
    same rule pack works from the repo root, a fixture tree, or a tmpdir.
    """

    def __init__(self, path: Path, rel: str, raw: Optional[bytes] = None) -> None:
        self.path = path
        self.rel = rel.replace("\\", "/")
        self.raw = path.read_bytes() if raw is None else raw
        self.text = self.raw.decode("utf-8", errors="replace")
        self.lines: List[str] = self.text.splitlines()
        self._tree: object = _MISSING
        self._tokens: object = _MISSING
        self.syntax_error: Optional[SyntaxError] = None

    def in_path(self, *fragments: str) -> bool:
        """True when ``rel`` lives under any of the given path fragments."""
        probe = "/" + self.rel
        return any(
            probe.endswith("/" + fragment.strip("/"))
            or ("/" + fragment.strip("/") + "/") in probe
            for fragment in fragments
        )

    @property
    def tree(self) -> Optional[ast.AST]:
        """The module AST, or None when the file has a syntax error."""
        if self._tree is _MISSING:
            try:
                self._tree = ast.parse(self.text, filename=self.rel)
            except SyntaxError as error:
                self.syntax_error = error
                self._tree = None
        return self._tree  # type: ignore[return-value]

    @property
    def tokens(self) -> List[tokenize.TokenInfo]:
        """The token stream (empty when the file cannot be tokenized)."""
        if self._tokens is _MISSING:
            try:
                self._tokens = list(
                    tokenize.generate_tokens(io.StringIO(self.text).readline)
                )
            except (tokenize.TokenError, SyntaxError, IndentationError):
                self._tokens = []
        return self._tokens  # type: ignore[return-value]

    def multiline_string_interior_lines(self) -> Set[int]:
        """Physical lines strictly inside multi-line string literals.

        Format rules exempt these: whitespace inside a triple-quoted
        string is literal content, not layout.
        """
        interior: Set[int] = set()
        for token in self.tokens:
            if token.type == tokenize.STRING and token.end[0] > token.start[0]:
                interior.update(range(token.start[0] + 1, token.end[0] + 1))
        return interior


class Project:
    """Repository-level context shared by every rule invocation."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self._docs: dict = {}

    def doc_text(self, name: str) -> str:
        """The text of ``docs/<name>`` ('' when the file does not exist)."""
        if name not in self._docs:
            path = self.root / "docs" / name
            self._docs[name] = (
                path.read_text(encoding="utf-8") if path.is_file() else ""
            )
        return self._docs[name]


def load_module(path: Path, root: Path) -> SourceModule:
    """Build a :class:`SourceModule` with ``rel`` computed against ``root``."""
    try:
        rel = path.resolve().relative_to(Path(root).resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    return SourceModule(path, rel)


def collect_files(paths: Tuple[Path, ...]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen = {}
    for entry in paths:
        if entry.is_dir():
            candidates = sorted(entry.rglob("*.py"))
        else:
            candidates = [entry]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            if any(part.startswith(".") and part not in (".", "..")
                   for part in candidate.parts):
                continue
            seen[candidate.resolve()] = candidate
    return sorted(seen.values())
