"""Finding: one located diagnostic produced by a rule.

A finding is a plain value — ``(rule, path, line, col, message, severity)``
— rendered either as the classic one-line text form
(``file:line:col RULEID message``) or as a JSON object.  Paths are always
repository-relative POSIX strings so findings are stable across machines
and can key a committed baseline file.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List

__all__ = ["Finding", "render_text", "render_json_payload"]

#: Severities a rule may declare, strongest first.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic at a source location (sortable by location)."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    def text(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "Finding":
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            rule=str(payload["rule"]),
            message=str(payload["message"]),
            severity=str(payload.get("severity", "error")),
        )


def render_text(findings: Iterable[Finding]) -> str:
    return "\n".join(finding.text() for finding in findings)


def render_json_payload(findings: Iterable[Finding]) -> List[Dict[str, object]]:
    return [finding.to_json() for finding in findings]
