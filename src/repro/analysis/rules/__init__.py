"""The shipped rule pack.  Importing this package registers every rule.

== =======================================================================
id guards
== =======================================================================
FL000 stale / malformed ``# fairlint:`` directives (emitted by the engine)
FL001 lock discipline: lock-guarded ``self._*`` state written unlocked
FL002 hot paths must not materialise per-row Python values
FL003 canonical-envelope drift: undocumented wire-protocol fields
FL004 fingerprint completeness (no silent pickle fallbacks)
FL005 metrics naming + OPERATIONS.md coverage
FL006 bare-thread hygiene in request-serving code
FL007 swallowed exceptions
FL101 tab indentation          (format floor)
FL102 trailing whitespace      (format floor)
FL103 line longer than 100     (format floor)
FL104 missing newline at EOF   (format floor)
FL105 CR / CRLF line endings   (format floor)
FL900 file does not parse (emitted by the engine)
== =======================================================================
"""

from repro.analysis.rules import (  # noqa: F401  (registration side effect)
    concurrency,
    format as format_rules,
    meta,
    performance,
    protocol,
    robustness,
)
