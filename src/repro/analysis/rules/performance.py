"""FL002: hot paths must never materialise per-row Python values.

The columnar data plane (PR 7) made ``repro.core`` / ``repro.scoring`` /
``repro.metrics`` operate on ``codes()`` / ``numeric_column()`` array
slices; ``Dataset.column()`` and ``iter_rows()`` rebuild per-row Python
objects and silently re-introduce the exact regression class the
million-row benchmarks guard against.  This rule keeps those APIs out of
the hot modules entirely — presentation layers (session, roles, CLI) may
still use them.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import Project, SourceModule

__all__ = ["HotPathMaterialisation"]

_HOT_PATHS = ("repro/core", "repro/scoring", "repro/metrics")
_ROW_APIS = {
    "iter_rows": "iterates row dicts",
    "column": "materialises one Python value per row",
}


@register
class HotPathMaterialisation(Rule):
    id = "FL002"
    name = "hot-path-materialisation"
    description = (
        "A hot-path module (repro.core / repro.scoring / repro.metrics) "
        "calls a per-row API (Dataset.iter_rows / Dataset.column).  Use the "
        "columnar slices — codes(), numeric_column(), value_counts() — so "
        "million-row datasets never materialise per-row Python values."
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        if not module.in_path(*_HOT_PATHS):
            return
        tree = module.tree
        if tree is None:
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _ROW_APIS:
                yield self.finding(
                    module, node.lineno, node.col_offset + 1,
                    f".{func.attr}() {_ROW_APIS[func.attr]} on the hot path; "
                    "use codes()/numeric_column() column slices",
                )
