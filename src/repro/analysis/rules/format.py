"""The stdlib format floor: FL101-FL105.

A ``tokenize``-backed replacement for the advisory ruff-format CI step
(ruff is not installable in the build containers, so the tree needs a
gate that runs everywhere Python does).  Lines strictly inside multi-line
string literals are exempt from the whitespace rules — their whitespace
is content, not layout — which is why this is token-aware rather than a
plain grep.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import Project, SourceModule

__all__ = [
    "TabIndentation",
    "TrailingWhitespace",
    "LineTooLong",
    "MissingFinalNewline",
    "CarriageReturn",
]

#: Matches the repo's ruff configuration (pyproject.toml line-length).
MAX_LINE_LENGTH = 100


@register
class TabIndentation(Rule):
    id = "FL101"
    name = "tab-indentation"
    description = "A line is indented with tab characters; use spaces."

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        interior = module.multiline_string_interior_lines()
        for number, line in enumerate(module.lines, start=1):
            if number in interior:
                continue
            indent = line[: len(line) - len(line.lstrip())]
            if "\t" in indent:
                yield self.finding(
                    module, number, indent.index("\t") + 1,
                    "tab in indentation; use spaces",
                )


@register
class TrailingWhitespace(Rule):
    id = "FL102"
    name = "trailing-whitespace"
    description = "A line ends with spaces or tabs (including blank lines)."

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        interior = module.multiline_string_interior_lines()
        for number, line in enumerate(module.lines, start=1):
            if number in interior:
                continue
            if line and line[-1] in " \t":
                yield self.finding(
                    module, number, len(line.rstrip()) + 1,
                    "trailing whitespace",
                )


@register
class LineTooLong(Rule):
    id = "FL103"
    name = "line-too-long"
    description = f"A line is longer than {MAX_LINE_LENGTH} characters."

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        for number, line in enumerate(module.lines, start=1):
            if len(line) > MAX_LINE_LENGTH:
                yield self.finding(
                    module, number, MAX_LINE_LENGTH + 1,
                    f"line is {len(line)} characters "
                    f"(limit {MAX_LINE_LENGTH})",
                )


@register
class MissingFinalNewline(Rule):
    id = "FL104"
    name = "missing-final-newline"
    description = "The file does not end with a newline character."

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        if module.raw and not module.raw.endswith(b"\n"):
            yield self.finding(
                module, max(1, len(module.lines)),
                len(module.lines[-1]) + 1 if module.lines else 1,
                "no newline at end of file",
            )


@register
class CarriageReturn(Rule):
    id = "FL105"
    name = "carriage-return"
    description = "The file contains CR or CRLF line endings; use LF."

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        if b"\r" not in module.raw:
            return
        for number, line in enumerate(module.raw.split(b"\n"), start=1):
            if b"\r" in line:
                yield self.finding(
                    module, number, line.index(b"\r") + 1,
                    "CR/CRLF line ending; convert the file to LF",
                )
                return  # one finding per file: converting fixes every line
