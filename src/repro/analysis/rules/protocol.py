"""Cross-check rules: FL003 canonical drift, FL004 fingerprints, FL005 metrics.

These rules tie the code to its contracts:

* **FL003** — every field of the wire-protocol dataclasses in
  ``service/jobs.py`` must either be excluded from the canonical envelope
  (``ServiceResult.canonical()`` serialises an explicit key list, so an
  excluded field cannot drift byte-identity) or be documented in
  ``docs/PROTOCOL.md``.  Adding a field without doing one of the two is
  exactly how canonical-bytes drift ships.
* **FL004** — every ``ScoringFunction`` subclass must define
  ``fingerprint()`` (content addressing is what the cache, catalog and
  shard router key on), and ``pickle.dumps``/``pickle.loads`` may appear
  only in the sanctioned fallback site ``service/fingerprint.py``.
* **FL005** — every metric family literal registered via
  ``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)`` must match
  ``fairank_[a-z_]+`` and be listed in ``docs/OPERATIONS.md``, so the
  operations reference can never miss a family an operator will see.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import Project, SourceModule

__all__ = ["CanonicalDrift", "FingerprintCompleteness", "MetricsNaming"]


def _documented(name: str, doc_text: str) -> bool:
    return re.search(rf"\b{re.escape(name)}\b", doc_text) is not None


def _is_dataclass(class_node: ast.ClassDef) -> bool:
    for decorator in class_node.decorator_list:
        node = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(node, ast.Attribute) and node.attr == "dataclass":
            return True
        if isinstance(node, ast.Name) and node.id == "dataclass":
            return True
    return False


def _field_names(class_node: ast.ClassDef) -> List[ast.AnnAssign]:
    fields = []
    for statement in class_node.body:
        if (
            isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
            and not statement.target.id.startswith("_")
            and "ClassVar" not in ast.unparse(statement.annotation)
        ):
            fields.append(statement)
    return fields


def _canonical_keys(class_node: ast.ClassDef) -> Optional[Set[str]]:
    """String keys ``canonical()`` serialises (dict literals + subscript
    stores), or None when the class has no ``canonical`` method."""
    for statement in class_node.body:
        if (
            isinstance(statement, ast.FunctionDef)
            and statement.name == "canonical"
        ):
            keys: Set[str] = set()
            for node in ast.walk(statement):
                if isinstance(node, ast.Dict):
                    keys.update(
                        key.value
                        for key in node.keys
                        if isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    )
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.slice, ast.Constant)
                            and isinstance(target.slice.value, str)
                        ):
                            keys.add(target.slice.value)
            return keys
    return None


@register
class CanonicalDrift(Rule):
    id = "FL003"
    name = "canonical-bytes-drift"
    description = (
        "A wire-protocol dataclass field in service/jobs.py is serialised "
        "into the canonical envelope (or is a request field) but does not "
        "appear in docs/PROTOCOL.md.  Document it, or exclude it from "
        "canonical() like the other serving metadata."
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        if not module.in_path("service/jobs.py"):
            return
        tree = module.tree
        if tree is None:
            return
        protocol_doc = project.doc_text("PROTOCOL.md")
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
                continue
            if node.name.startswith("_"):
                continue
            is_result = _canonical_keys(node) is not None
            is_request = node.name.endswith("Request")
            if not (is_result or is_request):
                continue
            canonical = _canonical_keys(node) or set()
            for field in _field_names(node):
                name = field.target.id  # type: ignore[union-attr]
                if is_result and name not in canonical:
                    continue  # excluded from canonical(): cannot drift bytes
                if not _documented(name, protocol_doc):
                    where = (
                        "the canonical() key set"
                        if is_result
                        else f"request dataclass {node.name}"
                    )
                    yield self.finding(
                        module, field.lineno, field.col_offset + 1,
                        f"field '{name}' is in {where} but not documented in "
                        "docs/PROTOCOL.md; document it or exclude it from "
                        "the canonical envelope",
                    )


@register
class FingerprintCompleteness(Rule):
    id = "FL004"
    name = "fingerprint-completeness"
    description = (
        "A ScoringFunction subclass does not define fingerprint() (the "
        "service would silently fall back to pickle hashing), or pickle is "
        "used outside the sanctioned fallback site service/fingerprint.py."
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        tree = module.tree
        if tree is None:
            return
        sanctioned = module.in_path("service/fingerprint.py")
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)
            if sanctioned or not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("dumps", "loads", "dump", "load")
                and isinstance(func.value, ast.Name)
                and func.value.id == "pickle"
            ):
                yield self.finding(
                    module, node.lineno, node.col_offset + 1,
                    f"pickle.{func.attr} outside service/fingerprint.py; "
                    "content addressing must go through the structured "
                    "fingerprint() protocol (pickle bytes are not stable "
                    "across versions)",
                )

    def _check_class(
        self, module: SourceModule, class_node: ast.ClassDef
    ) -> Iterable[Finding]:
        subclasses_scorer = any(
            (isinstance(base, ast.Name) and base.id == "ScoringFunction")
            or (isinstance(base, ast.Attribute) and base.attr == "ScoringFunction")
            for base in class_node.bases
        )
        if not subclasses_scorer:
            return
        defines_fingerprint = any(
            isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
            and statement.name == "fingerprint"
            for statement in class_node.body
        )
        if not defines_fingerprint:
            yield self.finding(
                module, class_node.lineno, class_node.col_offset + 1,
                f"ScoringFunction subclass {class_node.name} does not define "
                "fingerprint(); the service would fall back to pickle "
                "hashing, which is not stable across Python versions",
            )


_FAMILY_PATTERN = re.compile(r"^fairank_[a-z_]+$")
_REGISTRY_METHODS = ("counter", "gauge", "histogram")


@register
class MetricsNaming(Rule):
    id = "FL005"
    name = "metrics-naming"
    description = (
        "A metric family literal registered via .counter()/.gauge()/"
        ".histogram() does not match fairank_[a-z_]+ or is missing from the "
        "family reference in docs/OPERATIONS.md."
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        tree = module.tree
        if tree is None:
            return
        operations_doc = project.doc_text("OPERATIONS.md")
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _REGISTRY_METHODS
                and node.args
            ):
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue  # dynamically-built names cannot be checked here
            family = first.value
            if not _FAMILY_PATTERN.match(family):
                yield self.finding(
                    module, first.lineno, first.col_offset + 1,
                    f"metric family '{family}' does not match the "
                    "fairank_[a-z_]+ naming convention",
                )
            elif not _documented(family, operations_doc):
                yield self.finding(
                    module, first.lineno, first.col_offset + 1,
                    f"metric family '{family}' is not documented in "
                    "docs/OPERATIONS.md's family reference",
                )
