"""Engine-emitted pseudo-rules, registered so their ids are first-class.

FL000 and FL900 findings are produced by the engine itself (suppression
bookkeeping and parse failures), not by walking the AST — but they are
registered here so ``fairank lint --list-rules``, the docs cross-check
and the baseline treat them exactly like any other id.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import Project, SourceModule

__all__ = ["UnusedSuppression", "SyntaxErrorRule"]


@register
class UnusedSuppression(Rule):
    id = "FL000"
    name = "unused-suppression"
    description = (
        "A '# fairlint: disable=FLnnn' directive that matched no finding on "
        "its line, or a malformed fairlint directive.  Cannot itself be "
        "suppressed; remove or fix the stale annotation."
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        return ()  # emitted by the engine's suppression bookkeeping


@register
class SyntaxErrorRule(Rule):
    id = "FL900"
    name = "syntax-error"
    description = (
        "The file does not parse as Python; AST rules could not run on it."
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        if module.tree is None and module.syntax_error is not None:
            error = module.syntax_error
            yield self.finding(
                module, error.lineno or 1, error.offset or 1,
                f"file does not parse: {error.msg}",
            )
