"""Concurrency rules: FL001 lock discipline, FL006 bare-thread hygiene.

**FL001** encodes the repo's shared-state invariant (ScoreStore, Catalog,
ResultCache, WorkerPool, MetricsRegistry, ...): state a class guards with
its ``threading.Lock``/``RLock`` must *always* be guarded.  The rule
derives the guarded set per class — every ``self._x`` attribute that is
read or written inside a ``with self._lock:`` block anywhere in the class
— and flags writes to those attributes outside a lock block.  ``__init__``
(single-threaded construction) and ``*_locked`` methods (the repo's
"caller holds the lock" naming convention) are exempt.

**FL006** keeps request-serving code free of scheduling hazards: no
``time.sleep`` in ``repro.server`` / ``repro.shard`` / ``repro.service``
(poll with an interruptible ``Event.wait`` instead, so shutdown is never
blocked on a sleeping thread), and no daemon ``threading.Thread`` inside
HTTP handler / forward paths (daemon threads die mid-write on interpreter
exit; spawn them from lifecycle code only).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import Project, SourceModule

__all__ = ["LockDiscipline", "ThreadHygiene"]

_LOCK_FACTORIES = {"Lock", "RLock"}


def _self_attribute(node: ast.AST) -> Optional[str]:
    """The ``_name`` of a ``self._name`` attribute expression, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _written_self_attributes(target: ast.AST) -> List[Tuple[str, ast.AST]]:
    """Underscore-prefixed ``self._x`` attributes an assignment target
    writes or mutates (``self._x = ...``, ``self._x[k] = ...``,
    ``self._x[k][j] += ...``, tuple unpacking)."""
    out: List[Tuple[str, ast.AST]] = []
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            out.extend(_written_self_attributes(element))
        return out
    node = target
    while isinstance(node, ast.Subscript):  # peel self._x[...][...]
        node = node.value
    attribute = _self_attribute(node)
    if attribute is not None and attribute.startswith("_"):
        out.append((attribute, target))
    return out


def _is_lock_factory(value: ast.AST) -> bool:
    """True for ``threading.Lock()`` / ``threading.RLock()`` / ``Lock()``."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return False


def _with_lock_attributes(node: ast.stmt, lock_attributes: Set[str]) -> bool:
    """True when the statement is ``with self.<lock>:`` on a known lock."""
    if not isinstance(node, (ast.With, ast.AsyncWith)):
        return False
    for item in node.items:
        attribute = _self_attribute(item.context_expr)
        if attribute is not None and (
            attribute in lock_attributes or "lock" in attribute.lower()
        ):
            return True
    return False


class _ClassScan:
    """One pass over a class body, tracking the with-lock context."""

    def __init__(self, lock_attributes: Set[str]) -> None:
        self.lock_attributes = lock_attributes
        self.guarded: Set[str] = set()
        #: (attribute, node, method_name) writes made outside any lock block
        self.unlocked_writes: List[Tuple[str, ast.AST, str]] = []

    def scan_method(self, method: ast.AST) -> None:
        exempt = isinstance(
            method, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and (method.name == "__init__" or method.name.endswith("_locked"))
        for statement in getattr(method, "body", []):
            self._scan(statement, under_lock=False,
                       method_name=getattr(method, "name", "<lambda>"),
                       exempt=exempt)

    def _scan(
        self, node: ast.AST, *, under_lock: bool, method_name: str, exempt: bool
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested function may run on another thread long after this
            # block exits — never inherit the lock context.
            for child in ast.iter_child_nodes(node):
                self._scan(child, under_lock=False,
                           method_name=method_name, exempt=exempt)
            return
        if isinstance(node, ast.ClassDef):
            return  # nested classes are scanned independently
        if _with_lock_attributes(node, self.lock_attributes):
            for child in ast.iter_child_nodes(node):
                self._scan(child, under_lock=True,
                           method_name=method_name, exempt=exempt)
            return
        if under_lock:
            attribute = _self_attribute(node)
            if attribute is not None and attribute.startswith("_"):
                self.guarded.add(attribute)
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            for attribute, written in _written_self_attributes(target):
                if attribute in self.lock_attributes:
                    continue
                if under_lock:
                    self.guarded.add(attribute)
                elif not exempt:
                    self.unlocked_writes.append((attribute, written, method_name))
        for child in ast.iter_child_nodes(node):
            self._scan(child, under_lock=under_lock,
                       method_name=method_name, exempt=exempt)


@register
class LockDiscipline(Rule):
    id = "FL001"
    name = "lock-discipline"
    description = (
        "State guarded by a class's threading.Lock/RLock (any self._x "
        "accessed inside a 'with self._lock:' block) is written outside a "
        "lock block.  Take the lock, or rename the method '*_locked' if the "
        "caller holds it."
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        tree = module.tree
        if tree is None:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: SourceModule, class_node: ast.ClassDef
    ) -> Iterable[Finding]:
        lock_attributes = {
            attribute
            for body_node in ast.walk(class_node)
            if isinstance(body_node, ast.Assign)
            and _is_lock_factory(body_node.value)
            for target in body_node.targets
            for attribute in [_self_attribute(target)]
            if attribute is not None
        }
        if not lock_attributes:
            return
        scan = _ClassScan(lock_attributes)
        for statement in class_node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scan.scan_method(statement)
        for attribute, node, method_name in scan.unlocked_writes:
            if attribute not in scan.guarded:
                continue
            yield self.finding(
                module, node.lineno, node.col_offset + 1,
                f"{class_node.name}.{method_name} writes lock-guarded "
                f"'self.{attribute}' outside a 'with self."
                f"{sorted(lock_attributes)[0]}:' block",
            )


_SERVING_PATHS = ("repro/server", "repro/shard", "repro/service")
_HANDLER_PREFIXES = ("do_", "handle", "_handle", "forward", "_forward")


@register
class ThreadHygiene(Rule):
    id = "FL006"
    name = "bare-thread-hygiene"
    description = (
        "Request-serving code (repro.server / repro.shard / repro.service) "
        "calls time.sleep (use an interruptible Event.wait so shutdown can "
        "preempt the pause) or spawns a daemon threading.Thread inside an "
        "HTTP handler / forward path (daemon threads die mid-write on "
        "interpreter exit; spawn workers from lifecycle code)."
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        if not module.in_path(*_SERVING_PATHS):
            return
        tree = module.tree
        if tree is None:
            return
        yield from self._scan(module, tree, in_handler=False)

    def _scan(
        self, module: SourceModule, node: ast.AST, *, in_handler: bool
    ) -> Iterable[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            in_handler = in_handler or node.name.startswith(_HANDLER_PREFIXES)
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                yield self.finding(
                    module, node.lineno, node.col_offset + 1,
                    "time.sleep in request-serving code: poll with an "
                    "interruptible Event.wait(timeout=...) instead",
                )
            if in_handler and self._is_daemon_thread(node):
                yield self.finding(
                    module, node.lineno, node.col_offset + 1,
                    "daemon threading.Thread spawned inside a handler path; "
                    "daemon threads die mid-write on interpreter exit",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._scan(module, child, in_handler=in_handler)

    @staticmethod
    def _is_daemon_thread(call: ast.Call) -> bool:
        func = call.func
        named_thread = (
            isinstance(func, ast.Attribute) and func.attr == "Thread"
        ) or (isinstance(func, ast.Name) and func.id == "Thread")
        if not named_thread:
            return False
        return any(
            keyword.arg == "daemon"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in call.keywords
        )
