"""FL007: swallowed exceptions.

A bare ``except:`` (catches ``SystemExit`` / ``KeyboardInterrupt``) is
always flagged.  Any handler — regardless of exception type — whose whole
body is ``pass`` / ``...`` / ``continue`` swallows the failure without a
trace and is flagged too; the repo's sanctioned swallow sites (reaper and
drain loops that genuinely retry) carry a justified
``# fairlint: disable=FL007 -- reason`` annotation instead.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import Project, SourceModule

__all__ = ["SwallowedException"]


def _is_noop(statement: ast.stmt) -> bool:
    if isinstance(statement, (ast.Pass, ast.Continue)):
        return True
    return (
        isinstance(statement, ast.Expr)
        and isinstance(statement.value, ast.Constant)
        and statement.value.value is Ellipsis
    )


@register
class SwallowedException(Rule):
    id = "FL007"
    name = "swallowed-exception"
    description = (
        "A bare 'except:' clause, or an exception handler whose entire body "
        "is pass/.../continue.  Log, re-raise, or annotate a genuine "
        "poll-and-retry site with a justified '# fairlint: disable=FL007'."
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        tree = module.tree
        if tree is None:
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module, node.lineno, node.col_offset + 1,
                    "bare 'except:' also catches SystemExit/KeyboardInterrupt; "
                    "name the exceptions",
                )
                continue
            if all(_is_noop(statement) for statement in node.body):
                caught = ast.unparse(node.type)
                yield self.finding(
                    module, node.lineno, node.col_offset + 1,
                    f"'except {caught}:' swallows the failure without a "
                    "trace (body is only pass); log, re-raise, or justify "
                    "with a disable annotation",
                )
