"""The analysis driver: files -> rules -> suppressions -> baseline -> report.

``run_analysis`` is the one entry point the CLI (``fairank lint``) and the
CI gate (``scripts/check_analysis.py``) share.  The pipeline per file:

1. every registered rule checks the module (AST rules skip files that do
   not parse; FL900 reports those),
2. ``# fairlint: disable=`` directives drop matching findings on their
   line, and directives that matched nothing become FL000 findings,
3. the surviving findings are diffed against the committed baseline —
   masked legacy findings pass, anything new fails, and stale baseline
   entries fail too (the ratchet only ever shrinks).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline, BaselineDiff, baseline_from_findings
from repro.analysis.findings import Finding
from repro.analysis.registry import all_rules
from repro.analysis.source import Project, collect_files, load_module
from repro.analysis.suppress import parse_suppressions

__all__ = ["AnalysisReport", "run_analysis"]

#: The roots `fairank lint` and CI analyse when none are given (tests are
#: excluded on purpose: fixture files carry deliberate violations).
DEFAULT_TARGETS = ("src", "scripts", "benchmarks", "examples")

#: Where the committed ratchet lives, relative to the repo root.
DEFAULT_BASELINE_NAME = ".fairlint-baseline.json"


@dataclass(frozen=True)
class AnalysisReport:
    """Everything one analysis run produced."""

    #: Findings that survived suppression, in location order (includes
    #: baseline-masked ones; see ``diff`` for the split).
    findings: Tuple[Finding, ...]
    diff: BaselineDiff
    files_analyzed: int
    baseline_total: int

    @property
    def failed(self) -> bool:
        """CI verdict: any new finding, or any stale baseline slack."""
        return bool(self.diff.new) or bool(self.diff.stale)

    def to_json(self) -> dict:
        return {
            "version": 1,
            "files_analyzed": self.files_analyzed,
            "findings": [finding.to_json() for finding in self.diff.new],
            "baseline": {
                "total": self.baseline_total,
                "masked": len(self.diff.masked),
                "stale": [
                    {"path": path, "rule": rule, "count": count}
                    for path, rule, count in self.diff.stale
                ],
            },
            "failed": self.failed,
        }

    def render_text(self) -> str:
        lines = [finding.text() for finding in self.diff.new]
        for path, rule, count in self.diff.stale:
            lines.append(
                f"{path}:0:0 {rule} stale baseline entry: {count} tolerated "
                "finding(s) no longer occur — run 'fairank lint "
                "--update-baseline' to ratchet the baseline down"
            )
        summary = (
            f"fairank lint: {len(self.diff.new)} finding(s), "
            f"{len(self.diff.masked)} baseline-masked, "
            f"{len(self.diff.stale)} stale baseline entr(ies) across "
            f"{self.files_analyzed} file(s)"
        )
        return "\n".join(lines + [summary])

    def render(self, output_format: str) -> str:
        if output_format == "json":
            return json.dumps(self.to_json(), indent=2, sort_keys=True)
        return self.render_text()


def run_analysis(
    paths: Sequence[Path],
    *,
    root: Path,
    baseline: Optional[Baseline] = None,
) -> AnalysisReport:
    """Analyse ``paths`` (files or directories) against the rule pack."""
    rules = all_rules()
    project = Project(Path(root))
    kept: List[Finding] = []
    files = collect_files(tuple(Path(path) for path in paths))
    for path in files:
        module = load_module(path, root)
        suppressions = parse_suppressions(module)
        for rule in rules:
            for finding in rule.check_module(module, project):
                if not suppressions.suppresses(finding.line, finding.rule):
                    kept.append(finding)
        kept.extend(suppressions.unused_findings(module))
    kept.sort()
    diff = (baseline or Baseline()).diff(kept)
    return AnalysisReport(
        findings=tuple(kept),
        diff=diff,
        files_analyzed=len(files),
        baseline_total=baseline.total if baseline is not None else 0,
    )


def update_baseline(report: AnalysisReport, path: Path) -> Baseline:
    """Write the baseline that exactly masks the report's findings."""
    baseline = baseline_from_findings(report.findings)
    baseline.save(path)
    return baseline
