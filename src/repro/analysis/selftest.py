"""Seeded violations proving every registered rule still fires.

``scripts/check_analysis.py --self-test`` (a CI step) and the unit tests
both run these: one minimal source tree per rule, each containing exactly
the violation its rule exists to catch.  A rule that stops detecting its
own seeded violation fails the build — the analysis plane cannot rot
silently.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Dict, Tuple

from repro.analysis.engine import run_analysis

__all__ = ["SELFTEST_CASES", "run_selftest"]

#: ``rule id -> (repo-relative path, source text)`` seeded violations.
SELFTEST_CASES: Dict[str, Tuple[str, str]] = {
    "FL000": (
        "repro/stale.py",
        "value = 1  # fairlint: disable=FL103\n",
    ),
    "FL001": (
        "repro/store.py",
        "import threading\n"
        "\n"
        "\n"
        "class Store:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._hits = 0\n"
        "\n"
        "    def record(self):\n"
        "        with self._lock:\n"
        "            self._hits += 1\n"
        "\n"
        "    def sloppy(self):\n"
        "        self._hits += 1\n",
    ),
    "FL002": (
        "repro/core/hot.py",
        "def total(dataset):\n"
        "    value = 0.0\n"
        "    for row in dataset.iter_rows():\n"
        "        value += row['score']\n"
        "    return value\n",
    ),
    "FL003": (
        "service/jobs.py",
        "import json\n"
        "from dataclasses import dataclass\n"
        "\n"
        "\n"
        "@dataclass(frozen=True)\n"
        "class ServiceResult:\n"
        "    surprise: int = 0\n"
        "\n"
        "    def canonical(self):\n"
        "        return json.dumps({'surprise': self.surprise})\n",
    ),
    "FL004": (
        "repro/scoring/custom.py",
        "from repro.scoring.base import ScoringFunction\n"
        "\n"
        "\n"
        "class SilentScorer(ScoringFunction):\n"
        "    def score(self, row):\n"
        "        return 1.0\n",
    ),
    "FL005": (
        "repro/obs/custom.py",
        "def install(registry):\n"
        "    registry.counter('Fairank-Bad-Name', 'help').inc()\n",
    ),
    "FL006": (
        "repro/server/slowpath.py",
        "import time\n"
        "\n"
        "\n"
        "def handle_request(payload):\n"
        "    time.sleep(0.1)\n"
        "    return payload\n",
    ),
    "FL007": (
        "repro/util.py",
        "def read(path):\n"
        "    try:\n"
        "        return open(path).read()\n"
        "    except:\n"
        "        pass\n",
    ),
    "FL101": (
        "repro/tabbed.py",
        "def f():\n\tif True:\n\t\treturn 1\n",
    ),
    "FL102": (
        "repro/trailing.py",
        "value = 1 \n",
    ),
    "FL103": (
        "repro/wide.py",
        "value = '" + "a" * 120 + "'\n",
    ),
    "FL104": (
        "repro/chopped.py",
        "value = 1",
    ),
    "FL105": (
        "repro/crlf.py",
        "value = 1\r\nother = 2\r\n",
    ),
    "FL900": (
        "repro/broken.py",
        "def broken(:\n",
    ),
}


def run_selftest() -> Dict[str, int]:
    """Run every seeded case; returns ``rule id -> matching finding count``.

    Each case runs in its own isolated root so violations cannot bleed
    between rules.  A healthy rule pack reports a count >= 1 for every id.
    """
    results: Dict[str, int] = {}
    with tempfile.TemporaryDirectory(prefix="fairlint-selftest-") as tmp:
        for rule_id, (relpath, source) in sorted(SELFTEST_CASES.items()):
            root = Path(tmp) / rule_id
            target = root / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(source.encode("utf-8"))
            report = run_analysis([root], root=root)
            results[rule_id] = sum(
                1 for finding in report.findings if finding.rule == rule_id
            )
    return results
