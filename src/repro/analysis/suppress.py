"""Inline suppressions: ``# fairlint: disable=FL001[,FL002] [-- reason]``.

Suppressions are parsed from *comment tokens only* (never string
literals), apply to the physical line they sit on, and are tracked: a
disable that never matched a finding is itself reported as **FL000
unused-suppression**, so stale annotations cannot accumulate.
"""

from __future__ import annotations

import re
import tokenize
from typing import Dict, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.source import SourceModule

__all__ = ["Suppressions", "parse_suppressions"]

#: Everything after ``disable=``: comma-separated rule ids, then an
#: optional ``-- reason`` tail that is ignored (but encouraged).
_DIRECTIVE = re.compile(
    r"#\s*fairlint:\s*disable=\s*(?P<ids>FL\d{3}(?:\s*,\s*FL\d{3})*)"
)

#: A comment that *looks* like a fairlint directive but does not parse —
#: surfaced as malformed instead of silently ignored.
_NEAR_MISS = re.compile(r"#\s*fairlint\b")


class Suppressions:
    """Per-file map of ``line -> suppressed rule ids`` with usage tracking."""

    def __init__(self) -> None:
        self._by_line: Dict[int, Set[str]] = {}
        self._used: Set[Tuple[int, str]] = set()
        self.malformed: List[Tuple[int, int, str]] = []

    def add(self, line: int, rule_ids: Set[str]) -> None:
        self._by_line.setdefault(line, set()).update(rule_ids)

    def suppresses(self, line: int, rule_id: str) -> bool:
        """True (and marks the directive used) when ``rule_id`` is disabled
        on ``line``.  FL000 itself can never be suppressed."""
        if rule_id == "FL000":
            return False
        if rule_id in self._by_line.get(line, ()):
            self._used.add((line, rule_id))
            return True
        return False

    def unused(self) -> List[Tuple[int, str]]:
        """Every ``(line, rule_id)`` directive that matched no finding."""
        out = [
            (line, rule_id)
            for line, rule_ids in self._by_line.items()
            for rule_id in sorted(rule_ids)
            if (line, rule_id) not in self._used
        ]
        return sorted(out)

    def unused_findings(self, module: SourceModule) -> List[Finding]:
        findings = [
            Finding(
                path=module.rel,
                line=line,
                col=1,
                rule="FL000",
                message=f"unused suppression of {rule_id}: no {rule_id} finding "
                        "on this line (remove the stale disable)",
            )
            for line, rule_id in self.unused()
        ]
        findings.extend(
            Finding(
                path=module.rel,
                line=line,
                col=col,
                rule="FL000",
                message=f"malformed fairlint directive {comment!r} "
                        "(expected '# fairlint: disable=FLnnn[,FLnnn] [-- reason]')",
            )
            for line, col, comment in self.malformed
        )
        return findings


def parse_suppressions(module: SourceModule) -> Suppressions:
    """Extract the file's directives from its comment tokens.

    An *inline* directive (trailing a statement) suppresses its own line; a
    *standalone* comment-line directive suppresses the next line, so long
    justifications can sit above the code they annotate.
    """
    suppressions = Suppressions()
    for token in module.tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(token.string)
        if match:
            rule_ids = {part.strip() for part in match.group("ids").split(",")}
            line = token.start[0]
            before = module.lines[line - 1][: token.start[1]]
            suppressions.add(line if before.strip() else line + 1, rule_ids)
        elif _NEAR_MISS.search(token.string):
            suppressions.malformed.append(
                (token.start[0], token.start[1] + 1, token.string.strip())
            )
    return suppressions
