"""FaiRank reproduction: exploring fairness of ranking in online job marketplaces.

This package reproduces the system described in *FaiRank: An Interactive
System to Explore Fairness of Ranking in Online Job Marketplaces* (Ghizzawi,
Marinescu, Elbassuoni, Amer-Yahia, Bisson — EDBT 2019).  The public API
re-exported here covers the most common entry points:

* data: :class:`~repro.data.Dataset`, :func:`~repro.data.load_example_table1`
* scoring: :class:`~repro.scoring.LinearScoringFunction`,
  :class:`~repro.scoring.RankDerivedScorer`
* core: :func:`~repro.core.quantify` (Algorithm 1),
  :func:`~repro.core.exhaustive_search`, :func:`~repro.core.unfairness`,
  :class:`~repro.core.Formulation`, :class:`~repro.core.FairnessProblem`
* roles: :class:`~repro.roles.Auditor`, :class:`~repro.roles.JobOwner`,
  :class:`~repro.roles.EndUser`
* session: :class:`~repro.session.FaiRankEngine`,
  :class:`~repro.session.SessionConfig`
* catalog: :class:`~repro.catalog.Catalog` — the single resource registry
  engine, service, roles and CLI all resolve through
* service: :class:`~repro.service.FairnessService`,
  :class:`~repro.service.FairnessClient`, :class:`~repro.service.BatchExecutor`,
  the protocol-v2 request types (:class:`~repro.service.QuantifyRequest`,
  :class:`~repro.service.AuditRequest`, :class:`~repro.service.CompareRequest`,
  :class:`~repro.service.BreakdownRequest`, :class:`~repro.service.SweepRequest`,
  :class:`~repro.service.EndUserRequest`, :class:`~repro.service.JobOwnerRequest`)
  and the result cache (:class:`~repro.service.LRUCache`)
* server: :class:`~repro.server.FairnessHTTPServer` (protocol v2 over REST)
  and :class:`~repro.server.HTTPFairnessClient` (same method surface as the
  in-process client, carried over HTTP)

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.catalog import Catalog, Resource, ResourceKind
from repro.core import (
    Aggregation,
    FairnessProblem,
    Formulation,
    Objective,
    Partition,
    Partitioning,
    ScoreStore,
    exhaustive_search,
    quantify,
    unfairness,
    unfairness_breakdown,
)
from repro.data import Dataset, Schema, load_example_table1
from repro.errors import CatalogError, FaiRankError
from repro.marketplace import CrowdsourcingGenerator, Job, Marketplace, MarketplaceCrawler
from repro.roles import Auditor, EndUser, JobOwner
from repro.scoring import LinearScoringFunction, RankDerivedScorer, ScoringFunction
from repro.service import (
    PROTOCOL_VERSION,
    AuditRequest,
    BatchExecutor,
    BreakdownRequest,
    CacheStats,
    CompareRequest,
    EndUserRequest,
    FairnessClient,
    FairnessService,
    JobOwnerRequest,
    LRUCache,
    QuantifyRequest,
    ServiceResult,
    SweepRequest,
    request_from_json,
)
from repro.server import FairnessHTTPServer, HTTPFairnessClient
from repro.session import FaiRankEngine, SessionConfig

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "FaiRankError",
    "Dataset",
    "Schema",
    "load_example_table1",
    "ScoringFunction",
    "LinearScoringFunction",
    "RankDerivedScorer",
    "Partition",
    "Partitioning",
    "ScoreStore",
    "Formulation",
    "Objective",
    "Aggregation",
    "quantify",
    "exhaustive_search",
    "unfairness",
    "unfairness_breakdown",
    "FairnessProblem",
    "Marketplace",
    "Job",
    "CrowdsourcingGenerator",
    "MarketplaceCrawler",
    "Auditor",
    "JobOwner",
    "EndUser",
    "FaiRankEngine",
    "SessionConfig",
    "Catalog",
    "CatalogError",
    "Resource",
    "ResourceKind",
    "FairnessService",
    "FairnessClient",
    "FairnessHTTPServer",
    "HTTPFairnessClient",
    "BatchExecutor",
    "LRUCache",
    "CacheStats",
    "PROTOCOL_VERSION",
    "QuantifyRequest",
    "AuditRequest",
    "CompareRequest",
    "BreakdownRequest",
    "SweepRequest",
    "EndUserRequest",
    "JobOwnerRequest",
    "ServiceResult",
    "request_from_json",
]
