"""Exception hierarchy for the FaiRank reproduction.

Every error raised by the library derives from :class:`FaiRankError` so that
callers can catch library-level failures with a single ``except`` clause while
still being able to distinguish the broad failure categories below.
"""

from __future__ import annotations


class FaiRankError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SchemaError(FaiRankError):
    """The dataset schema is malformed or inconsistent with the data."""


class UnknownAttributeError(SchemaError):
    """An attribute name was referenced that does not exist in the schema."""

    def __init__(self, name: str, available: tuple = ()):  # type: ignore[assignment]
        self.name = name
        self.available = tuple(available)
        message = f"unknown attribute {name!r}"
        if self.available:
            message += f" (available: {', '.join(sorted(self.available))})"
        super().__init__(message)


class DataError(FaiRankError):
    """A dataset row or value violates the declared schema."""


class EmptyDatasetError(DataError):
    """An operation that requires at least one individual got an empty dataset."""


class ScoringError(FaiRankError):
    """A scoring function could not be constructed or evaluated."""


class PartitioningError(FaiRankError):
    """A partitioning is invalid (not disjoint, not covering, or empty)."""


class FormulationError(FaiRankError):
    """An unfairness formulation was misconfigured."""


class AnonymizationError(FaiRankError):
    """k-anonymisation could not be achieved or was misconfigured."""


class MarketplaceError(FaiRankError):
    """A marketplace entity or generator was misconfigured."""


class SessionError(FaiRankError):
    """An interactive-session operation was invalid (e.g. unknown panel)."""


class ExperimentError(FaiRankError):
    """An experiment/benchmark harness was misconfigured."""


class ServiceError(FaiRankError):
    """A fairness-service request was invalid or referenced unknown entities."""


class CatalogError(FaiRankError):
    """A resource-registry operation was invalid (unknown name, frozen entry...)."""


class WarmStartError(FaiRankError):
    """A warm-start bundle component cannot be loaded (drift, truncation...).

    ``reason`` is a stable, low-cardinality label (``manifest``,
    ``fingerprint``, ``truncated``, ...) surfaced on the
    ``fairank_warmstart_skips_total`` metric family, so operators can tell a
    stale bundle from a corrupted one without reading logs.
    """

    def __init__(self, message: str, reason: str = "invalid") -> None:
        super().__init__(message)
        self.reason = reason
