"""The JOB OWNER scenario (paper §4).

"This scenario emphasizes the ability to define different scoring functions,
and examine their impact on individuals.  This exploration will help owners
understand the behavior of their scoring functions and will guide them to
choose the best function for their job, i.e., the one that satisfies some
desired fairness."

:class:`JobOwner` takes a base job and a family of scoring-function variants
(explicit weight overrides or an automatic weight sweep), quantifies the
unfairness each variant induces over the candidate pool, and recommends the
variant that best satisfies the owner's fairness objective (by default the
*least* unfair variant, since the owner wants the fairest function).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.core.formulations import Formulation, MOST_UNFAIR_AVG_EMD
from repro.core.quantify import QuantifyResult, quantify
from repro.core.unfairness import unfairness_breakdown
from repro.data.dataset import Dataset
from repro.errors import MarketplaceError, ScoringError
from repro.marketplace.entities import Marketplace
from repro.roles.report import ReportTable
from repro.scoring.library import weight_sweep
from repro.scoring.linear import LinearScoringFunction

__all__ = ["VariantEvaluation", "JobOwnerReport", "JobOwner"]


@dataclass
class VariantEvaluation:
    """Fairness outcome of one scoring-function variant."""

    function: LinearScoringFunction
    unfairness: float
    partitions: Tuple[str, ...]
    most_favored: Optional[str]
    least_favored: Optional[str]
    result: QuantifyResult

    @property
    def name(self) -> str:
        return self.function.name

    def as_row(self) -> List[object]:
        weights = ", ".join(
            f"{attribute}={weight:.2f}" for attribute, weight in self.function.weights.items()
        )
        return [
            self.name,
            weights,
            self.unfairness,
            len(self.partitions),
            self.most_favored or "-",
            self.least_favored or "-",
        ]


@dataclass
class JobOwnerReport:
    """Comparison of scoring-function variants for one job."""

    job_title: str
    formulation_name: str
    evaluations: List[VariantEvaluation] = field(default_factory=list)

    @property
    def fairest(self) -> Optional[VariantEvaluation]:
        """The variant with the lowest measured unfairness."""
        if not self.evaluations:
            return None
        return min(self.evaluations, key=lambda evaluation: evaluation.unfairness)

    @property
    def most_unfair(self) -> Optional[VariantEvaluation]:
        if not self.evaluations:
            return None
        return max(self.evaluations, key=lambda evaluation: evaluation.unfairness)

    def evaluation_for(self, name: str) -> VariantEvaluation:
        for evaluation in self.evaluations:
            if evaluation.name == name:
                return evaluation
        raise ScoringError(f"no variant named {name!r} in the report")

    def to_table(self) -> ReportTable:
        table = ReportTable(
            title=f"Scoring-function variants — {self.job_title} ({self.formulation_name})",
            headers=["variant", "weights", "unfairness", "#groups",
                     "most favored", "least favored"],
        )
        for evaluation in sorted(self.evaluations, key=lambda e: e.unfairness):
            table.add_row(*evaluation.as_row())
        if self.fairest is not None:
            table.add_note(
                f"recommended (fairest) variant: {self.fairest.name} "
                f"(unfairness {self.fairest.unfairness:.4f})"
            )
        return table

    def render(self) -> str:
        return self.to_table().render()


class JobOwner:
    """Explores scoring-function variants for a job and picks the fairest one."""

    def __init__(
        self,
        formulation: Formulation = MOST_UNFAIR_AVG_EMD,
        attributes: Optional[Sequence[str]] = None,
        min_partition_size: int = 1,
    ) -> None:
        self.formulation = formulation
        self.attributes = tuple(attributes) if attributes is not None else None
        self.min_partition_size = min_partition_size

    # -- evaluation ----------------------------------------------------------

    def evaluate_function(
        self, candidates: Dataset, function: LinearScoringFunction
    ) -> VariantEvaluation:
        """Quantify the unfairness a single variant induces over the candidates."""
        result = quantify(
            candidates,
            function,
            formulation=self.formulation,
            attributes=self.attributes,
            min_partition_size=self.min_partition_size,
        )
        breakdown = unfairness_breakdown(result.partitioning, function, self.formulation)
        return VariantEvaluation(
            function=function,
            unfairness=result.unfairness,
            partitions=result.partition_labels,
            most_favored=breakdown.most_favored,
            least_favored=breakdown.least_favored,
            result=result,
        )

    def compare_variants(
        self,
        candidates: Dataset,
        base: LinearScoringFunction,
        overrides: Sequence[Mapping[str, float]],
        job_title: Optional[str] = None,
    ) -> JobOwnerReport:
        """Evaluate the base function plus one variant per weight override."""
        if not isinstance(base, LinearScoringFunction):
            raise ScoringError("the job owner workflow requires a transparent linear function")
        report = JobOwnerReport(
            job_title=job_title or base.name,
            formulation_name=self.formulation.name,
        )
        report.evaluations.append(self.evaluate_function(candidates, base))
        for index, override in enumerate(overrides, start=1):
            variant = base.with_weights(name=f"{base.name}#{index}", **override)
            report.evaluations.append(self.evaluate_function(candidates, variant))
        return report

    def explore_job(
        self,
        marketplace: Marketplace,
        job_title: str,
        sweep_steps: int = 5,
    ) -> JobOwnerReport:
        """Sweep the weights of a marketplace job's scoring function.

        Builds an automatic weight sweep over the attributes the job's base
        function uses and compares every point of the sweep.
        """
        job = marketplace.job(job_title)
        if not isinstance(job.function, LinearScoringFunction):
            raise MarketplaceError(
                f"job {job_title!r} does not expose a transparent linear scoring function; "
                "the owner cannot explore variants of an opaque function"
            )
        candidates = job.candidates(marketplace.workers)
        overrides = weight_sweep(job.function.attributes, steps=sweep_steps)
        return self.compare_variants(candidates, job.function, overrides, job_title=job_title)
