"""Shared report structures for the three user-role workflows.

The auditor, job-owner and end-user scenarios all produce tabular findings
(one row per job / per scoring-function variant / per marketplace).  The
small report classes here keep those findings structured (for tests and
benchmarks) while also rendering to aligned text tables (what the demo would
show on screen).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["ReportTable", "format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a list of rows as an aligned, pipe-separated text table."""
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = " | ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)


@dataclass
class ReportTable:
    """A titled table of findings with named columns."""

    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but the table {self.title!r} has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def sort_by(self, column: str, descending: bool = False) -> None:
        """Sort rows by a named column."""
        if column not in self.headers:
            raise ValueError(f"table {self.title!r} has no column {column!r}")
        index = self.headers.index(column)
        self.rows.sort(key=lambda row: row[index], reverse=descending)

    def column(self, name: str) -> List[object]:
        """Values of one named column, in row order."""
        if name not in self.headers:
            raise ValueError(f"table {self.title!r} has no column {name!r}")
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def to_records(self) -> List[Dict[str, object]]:
        """Rows as dicts keyed by column name."""
        return [dict(zip(self.headers, row)) for row in self.rows]

    def render(self) -> str:
        """Full text rendering: title, table and notes."""
        parts = [self.title, "=" * len(self.title), format_table(self.headers, self.rows)]
        if self.notes:
            parts.append("")
            parts.extend(f"* {note}" for note in self.notes)
        return "\n".join(parts)

    def __len__(self) -> int:
        return len(self.rows)
