"""User-role workflows: auditor, job owner and end user (S11)."""

from repro.roles.auditor import AuditReport, Auditor, JobAudit
from repro.roles.end_user import EndUser, GroupOutcome
from repro.roles.job_owner import JobOwner, JobOwnerReport, VariantEvaluation
from repro.roles.report import ReportTable, format_table

__all__ = [
    "Auditor",
    "AuditReport",
    "JobAudit",
    "JobOwner",
    "JobOwnerReport",
    "VariantEvaluation",
    "EndUser",
    "GroupOutcome",
    "ReportTable",
    "format_table",
]
