"""The AUDITOR scenario (paper §4).

"This scenario provides auditors with the ability to monitor a marketplace
that offers multiple jobs, each with its own scoring function. … The auditor
would want to quantify the fairness for each job offered on the platform, and
identify demographics groups that are least/most favored on the platform by
each job.  Additionally, the auditor might consider cases where the
marketplace does not provide full transparency…"

:class:`Auditor` walks every job of a :class:`~repro.marketplace.entities.Marketplace`,
runs the QUANTIFY search for each, and assembles a fairness report: per-job
unfairness, the most/least favoured groups, and (optionally) the same
quantities recomputed under reduced data transparency (k-anonymised
attributes) and reduced function transparency (rank-only histograms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.anonymize.kanonymity import GlobalRecodingAnonymizer
from repro.core.formulations import Formulation, MOST_UNFAIR_AVG_EMD
from repro.core.quantify import QuantifyResult, quantify
from repro.core.scorestore import ScoreStore
from repro.core.unfairness import unfairness_breakdown
from repro.data.dataset import Dataset
from repro.errors import MarketplaceError
from repro.marketplace.entities import Job, Marketplace
from repro.roles.report import ReportTable
from repro.scoring.base import ScoringFunction
from repro.scoring.rank import OpaqueScoringFunction, RankDerivedScorer

__all__ = ["JobAudit", "AuditReport", "Auditor"]


@dataclass
class JobAudit:
    """Fairness findings for one job of the marketplace."""

    job_title: str
    transparent_function: bool
    unfairness: float
    partitions: Tuple[str, ...]
    most_favored: Optional[str]
    least_favored: Optional[str]
    result: QuantifyResult

    def as_row(self) -> List[object]:
        return [
            self.job_title,
            "yes" if self.transparent_function else "no",
            self.unfairness,
            len(self.partitions),
            self.most_favored or "-",
            self.least_favored or "-",
        ]


@dataclass
class AuditReport:
    """A full marketplace fairness report."""

    marketplace_name: str
    formulation_name: str
    audits: List[JobAudit] = field(default_factory=list)

    @property
    def most_unfair_job(self) -> Optional[JobAudit]:
        if not self.audits:
            return None
        return max(self.audits, key=lambda audit: audit.unfairness)

    @property
    def least_unfair_job(self) -> Optional[JobAudit]:
        if not self.audits:
            return None
        return min(self.audits, key=lambda audit: audit.unfairness)

    def audit_for(self, job_title: str) -> JobAudit:
        for audit in self.audits:
            if audit.job_title == job_title:
                return audit
        raise MarketplaceError(f"the report contains no audit for job {job_title!r}")

    def to_table(self) -> ReportTable:
        table = ReportTable(
            title=f"Fairness report — {self.marketplace_name} ({self.formulation_name})",
            headers=["job", "transparent f", "unfairness", "#groups",
                     "most favored", "least favored"],
        )
        for audit in sorted(self.audits, key=lambda a: -a.unfairness):
            table.add_row(*audit.as_row())
        if self.most_unfair_job is not None:
            table.add_note(
                f"most unfair job: {self.most_unfair_job.job_title} "
                f"(unfairness {self.most_unfair_job.unfairness:.4f})"
            )
        if self.least_unfair_job is not None:
            table.add_note(
                f"least unfair job: {self.least_unfair_job.job_title} "
                f"(unfairness {self.least_unfair_job.unfairness:.4f})"
            )
        return table

    def render(self) -> str:
        return self.to_table().render()


class Auditor:
    """Runs marketplace-wide fairness audits.

    Parameters
    ----------
    formulation:
        The unfairness formulation audits optimise (paper default: most
        unfair / average pairwise EMD).
    attributes:
        Protected attributes the partitioning may use (default: all of the
        marketplace's protected attributes).
    min_partition_size:
        Minimum partition size passed to QUANTIFY (avoids singleton groups
        when auditing large crawls).
    store_provider:
        Optional callable ``(dataset, function) -> ScoreStore`` supplying the
        score store each audit runs against.  The service layer passes its
        fingerprint-keyed pool here, so a marketplace-wide audit fan-out
        shares materialized scoring passes across requests; without one,
        every audit builds its own private store.
    """

    def __init__(
        self,
        formulation: Formulation = MOST_UNFAIR_AVG_EMD,
        attributes: Optional[Sequence[str]] = None,
        min_partition_size: int = 1,
        store_provider: Optional[Callable[[Dataset, ScoringFunction], ScoreStore]] = None,
    ) -> None:
        self.formulation = formulation
        self.attributes = tuple(attributes) if attributes is not None else None
        self.min_partition_size = min_partition_size
        self.store_provider = store_provider

    def _store_for(self, dataset: Dataset, function: ScoringFunction) -> Optional[ScoreStore]:
        if self.store_provider is None:
            return None
        return self.store_provider(dataset, function)

    # -- single-job audit --------------------------------------------------

    def audit_job(self, marketplace: Marketplace, job: Job) -> JobAudit:
        """Audit one job, honouring its function-transparency setting."""
        candidates = job.candidates(marketplace.workers)
        function: ScoringFunction = job.function
        if isinstance(function, OpaqueScoringFunction):
            # Only the ranking is observable: rebuild scores from positions.
            function = RankDerivedScorer(
                function.reveal_ranking(candidates), name=f"{job.title}-from-ranks"
            )
        store = self._store_for(candidates, function)
        result = quantify(
            candidates,
            function,
            formulation=self.formulation,
            attributes=self.attributes,
            min_partition_size=self.min_partition_size,
            store=store,
        )
        breakdown = unfairness_breakdown(
            result.partitioning, function, self.formulation, store=store
        )
        return JobAudit(
            job_title=job.title,
            transparent_function=job.is_transparent,
            unfairness=result.unfairness,
            partitions=result.partition_labels,
            most_favored=breakdown.most_favored,
            least_favored=breakdown.least_favored,
            result=result,
        )

    # -- full-marketplace audit ---------------------------------------------

    def audit_marketplace(self, marketplace: Marketplace) -> AuditReport:
        """Audit every job offered on the marketplace."""
        if not len(marketplace):
            raise MarketplaceError(
                f"marketplace {marketplace.name!r} offers no jobs to audit"
            )
        report = AuditReport(
            marketplace_name=marketplace.name,
            formulation_name=self.formulation.name,
        )
        for job in marketplace:
            report.audits.append(self.audit_job(marketplace, job))
        return report

    def audit_with_anonymization(
        self,
        marketplace: Marketplace,
        job_title: str,
        k_values: Sequence[int] = (1, 2, 5, 10),
    ) -> ReportTable:
        """Audit one job under several data-transparency (k-anonymity) levels.

        k = 1 is the raw data; larger k coarsens the protected attributes
        before the audit, mirroring the demo's ARX integration.
        """
        job = marketplace.job(job_title)
        candidates = job.candidates(marketplace.workers)
        anonymizer = GlobalRecodingAnonymizer()
        table = ReportTable(
            title=f"Data transparency — {marketplace.name} / {job_title}",
            headers=["k", "unfairness", "#groups", "most favored", "least favored"],
        )
        for k in k_values:
            if k <= 1:
                population = candidates
            else:
                population = anonymizer.anonymize(candidates, k=k).dataset
            function: ScoringFunction = job.function
            if isinstance(function, OpaqueScoringFunction):
                function = RankDerivedScorer(
                    function.reveal_ranking(population), name=f"{job.title}-from-ranks"
                )
            result = quantify(
                population,
                function,
                formulation=self.formulation,
                attributes=None,
                min_partition_size=self.min_partition_size,
            )
            breakdown = unfairness_breakdown(result.partitioning, function, self.formulation)
            table.add_row(
                k,
                result.unfairness,
                len(result.partitioning),
                breakdown.most_favored or "-",
                breakdown.least_favored or "-",
            )
        return table
