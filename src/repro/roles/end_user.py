"""The END-USER scenario (paper §4).

"This scenario offers end-users the ability to immerse themselves and
simulate different cases in which they are to be ranked.  Given a group to
which the end-user belongs (e.g., Young professionals in Grenoble) and a job
of interest (e.g., installing wood panels), the end-user can see how well the
marketplace is treating that group and make an informed decision of whether
to target that job or not."

:class:`EndUser` describes the group the user belongs to as a set of
protected-attribute values, then — for one or several marketplaces/jobs —
reports how that group fares: its mean score and rank, its exposure share,
how far its score distribution sits from the rest of the population (EMD),
and whether the most-unfair partitioning found by QUANTIFY singles the group
out as disadvantaged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.formulations import Formulation, MOST_UNFAIR_AVG_EMD
from repro.core.quantify import quantify
from repro.data.dataset import Dataset
from repro.data.filters import And, Equals, Filter
from repro.errors import MarketplaceError
from repro.marketplace.entities import Marketplace
from repro.metrics.histogram import build_histogram
from repro.roles.report import ReportTable
from repro.scoring.base import ScoringFunction
from repro.scoring.rank import OpaqueScoringFunction, RankDerivedScorer

__all__ = ["GroupOutcome", "EndUser"]


@dataclass(frozen=True)
class GroupOutcome:
    """How one job treats the end-user's group."""

    marketplace: str
    job_title: str
    group_size: int
    population_size: int
    mean_score: float
    population_mean_score: float
    mean_rank: float
    exposure_share: float
    emd_vs_rest: float
    flagged_unfair: bool

    @property
    def score_gap(self) -> float:
        """Group mean score minus population mean score (negative = disadvantaged)."""
        return self.mean_score - self.population_mean_score

    def as_row(self) -> List[object]:
        return [
            self.marketplace,
            self.job_title,
            self.group_size,
            self.mean_score,
            self.population_mean_score,
            self.score_gap,
            self.mean_rank,
            self.emd_vs_rest,
            "yes" if self.flagged_unfair else "no",
        ]


class EndUser:
    """Simulates how a marketplace treats the group an end-user belongs to."""

    def __init__(
        self,
        group: Mapping[str, object],
        formulation: Formulation = MOST_UNFAIR_AVG_EMD,
    ) -> None:
        if not group:
            raise MarketplaceError("an end-user group needs at least one protected-attribute value")
        self.group: Dict[str, object] = dict(group)
        self.formulation = formulation

    # -- group membership -----------------------------------------------------

    @property
    def group_filter(self) -> Filter:
        """Declarative filter selecting the end-user's group."""
        return And(tuple(Equals(attribute, value) for attribute, value in self.group.items()))

    def group_label(self) -> str:
        return ", ".join(f"{attribute}={value}" for attribute, value in self.group.items())

    def _split_population(self, candidates: Dataset) -> Tuple[Dataset, Dataset]:
        """(group members, everyone else) among the job's candidates."""
        for attribute in self.group:
            candidates.schema.require_protected(attribute)
        group_filter = self.group_filter
        members = candidates.filter(group_filter.matches, name="group")
        rest = candidates.filter(lambda ind: not group_filter.matches(ind), name="rest")
        if not len(members):
            raise MarketplaceError(
                f"no candidate matches the end-user group ({self.group_label()})"
            )
        return members, rest

    # -- single-job assessment ---------------------------------------------------

    def assess_job(self, marketplace: Marketplace, job_title: str) -> GroupOutcome:
        """Report how one job treats the end-user's group."""
        job = marketplace.job(job_title)
        candidates = job.candidates(marketplace.workers)
        function: ScoringFunction = job.function
        if isinstance(function, OpaqueScoringFunction):
            function = RankDerivedScorer(
                function.reveal_ranking(candidates), name=f"{job_title}-from-ranks"
            )

        members, rest = self._split_population(candidates)
        member_scores = function.score_dataset(members)
        all_scores = function.score_dataset(candidates)

        ranking = function.rank(candidates)
        member_positions = [ranking.position(uid) for uid in members.uids]
        exposure = sum(1.0 / np.log2(position + 1) for position in member_positions)
        total_exposure = sum(
            1.0 / np.log2(position + 1) for position in range(1, len(ranking) + 1)
        )

        binning = self.formulation.effective_binning
        member_histogram = build_histogram(member_scores, binning=binning)
        if len(rest):
            rest_histogram = build_histogram(function.score_dataset(rest), binning=binning)
            emd_vs_rest = self.formulation.distance(member_histogram, rest_histogram)
        else:
            emd_vs_rest = 0.0

        flagged = self._group_flagged_as_disadvantaged(candidates, function)

        return GroupOutcome(
            marketplace=marketplace.name,
            job_title=job_title,
            group_size=len(members),
            population_size=len(candidates),
            mean_score=float(member_scores.mean()),
            population_mean_score=float(all_scores.mean()),
            mean_rank=float(np.mean(member_positions)),
            exposure_share=float(exposure / total_exposure) if total_exposure else 0.0,
            emd_vs_rest=float(emd_vs_rest),
            flagged_unfair=flagged,
        )

    def _group_flagged_as_disadvantaged(
        self, candidates: Dataset, function: ScoringFunction
    ) -> bool:
        """True when QUANTIFY's most-unfair partitioning puts the group's members
        in a below-population-mean partition constrained by the group's attributes."""
        result = quantify(
            candidates,
            function,
            formulation=self.formulation,
            attributes=None,
        )
        population_mean = float(function.score_dataset(candidates).mean())
        group_attributes = set(self.group)
        for partition in result.partitioning:
            constrained = set(partition.constrained_attributes)
            if not constrained & group_attributes:
                continue
            matches_group = all(
                partition.constraint_value(attribute) == self.group[attribute]
                for attribute in constrained & group_attributes
            )
            if not matches_group:
                continue
            scores = partition.scores(function)
            if scores.size and float(scores.mean()) < population_mean:
                return True
        return False

    # -- multi-job / multi-marketplace comparison ---------------------------------

    def compare_jobs(
        self, marketplace: Marketplace, job_titles: Optional[Sequence[str]] = None
    ) -> ReportTable:
        """Assess every (or the given) jobs of one marketplace for this group."""
        titles = tuple(job_titles) if job_titles is not None else marketplace.job_titles
        return self._tabulate(
            [self.assess_job(marketplace, title) for title in titles]
        )

    def compare_marketplaces(
        self, marketplaces: Sequence[Marketplace], job_title: str
    ) -> ReportTable:
        """Assess the same job across several marketplaces (where offered)."""
        outcomes = []
        for marketplace in marketplaces:
            if job_title in marketplace:
                outcomes.append(self.assess_job(marketplace, job_title))
        if not outcomes:
            raise MarketplaceError(
                f"none of the given marketplaces offers a job titled {job_title!r}"
            )
        return self._tabulate(outcomes)

    def _tabulate(self, outcomes: Sequence[GroupOutcome]) -> ReportTable:
        table = ReportTable(
            title=f"End-user view — group [{self.group_label()}]",
            headers=["marketplace", "job", "group size", "group mean", "pop mean",
                     "gap", "mean rank", "EMD vs rest", "flagged unfair"],
        )
        for outcome in sorted(outcomes, key=lambda o: -o.score_gap):
            table.add_row(*outcome.as_row())
        best = max(outcomes, key=lambda o: o.score_gap)
        worst = min(outcomes, key=lambda o: o.score_gap)
        table.add_note(
            f"best option for this group: {best.marketplace}/{best.job_title} "
            f"(gap {best.score_gap:+.4f})"
        )
        table.add_note(
            f"worst option for this group: {worst.marketplace}/{worst.job_title} "
            f"(gap {worst.score_gap:+.4f})"
        )
        return table
