"""Worker subprocess lifecycle for sharded serving.

A :class:`WorkerPool` owns N ``fairank serve`` processes, every one booted
from the *same* catalog snapshot — snapshots make worker state reproducible,
so any worker can answer any request byte-identically and the router's only
job is cache affinity.  The pool:

* **boots** each worker on an ephemeral port (``--port 0``), parses the
  announced port from the worker's stdout, then readiness-polls
  ``GET /v2/health`` until the worker answers ``status: ok``;
* **monitors** nothing in the background — the router reports forward
  failures, and the pool checks the process: a dead worker's slot is
  respawned on a daemon thread with **capped exponential backoff**
  (``backoff_base_s * 2^restarts``, capped at ``backoff_max_s``), so a
  crash-looping snapshot cannot hot-spin the machine;
* **stops** the fleet with SIGTERM (workers drain in-flight requests and
  exit cleanly — see the CLI's signal handling), escalating to SIGKILL only
  for a worker that does not exit in time.

The pool never proxies traffic itself; it only hands live
:class:`WorkerHandle` entries to the router.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import time
import urllib.request
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import ServiceError
from repro.obs.log import WORKER_SLOT_ENV, get_logger
from repro.obs.metrics import get_registry

__all__ = ["WorkerHandle", "WorkerPool"]

#: The machine-readable line ``fairank serve`` prints once bound.
_PORT_PATTERN = re.compile(r"http://[\d.]+:(\d+)")


def _default_worker_command(snapshot: Path, host: str) -> List[str]:
    """Boot one single-process ``fairank serve`` worker from the snapshot."""
    return [
        sys.executable, "-m", "repro.cli", "serve",
        "--catalog", str(snapshot), "--host", host, "--port", "0",
    ]


def _worker_env() -> Dict[str, str]:
    """The child environment, with this build of ``repro`` importable."""
    src_dir = Path(__file__).resolve().parent.parent.parent
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_dir)] + ([existing] if existing else [])
    )
    return env


class _StdoutPump:
    """Drains a worker's stdout for its whole life (a full pipe blocks the
    worker) while parsing the announced port and keeping a diagnostic tail."""

    def __init__(self, process: subprocess.Popen) -> None:
        self.port: Optional[int] = None
        self.port_found = threading.Event()
        self.tail: "deque[str]" = deque(maxlen=50)
        self._thread = threading.Thread(
            target=self._pump, args=(process,), daemon=True
        )
        self._thread.start()

    def _pump(self, process: subprocess.Popen) -> None:
        assert process.stdout is not None
        for line in process.stdout:
            self.tail.append(line.rstrip())
            if not self.port_found.is_set():
                match = _PORT_PATTERN.search(line)
                if match:
                    self.port = int(match.group(1))
                    self.port_found.set()
        # EOF: release any waiter so boot failure is detected promptly.
        self.port_found.set()


@dataclass
class WorkerHandle:
    """One live worker process (immutable once handed to the router)."""

    slot: int
    process: subprocess.Popen
    port: int
    base_url: str
    pump: _StdoutPump
    started_at: float = field(default_factory=time.monotonic)

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def describe(self) -> Dict[str, object]:
        return {
            "slot": self.slot,
            "pid": self.process.pid,
            "port": self.port,
            "url": self.base_url,
            "alive": self.alive,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
        }


class WorkerPool:
    """Spawns and supervises N snapshot-booted ``fairank serve`` workers.

    Parameters
    ----------
    snapshot:
        Catalog snapshot every worker boots from (``fairank serve --catalog``).
    size:
        Number of worker processes (routing slots).
    host:
        Bind address workers listen on (and the router forwards to).
    boot_timeout_s:
        Deadline for one worker to announce its port *and* pass the
        ``/v2/health`` readiness poll.
    backoff_base_s / backoff_max_s:
        Restart backoff: a slot that has been restarted ``r`` times waits
        ``min(backoff_base_s * 2**r, backoff_max_s)`` before respawning.
    worker_arguments:
        Extra ``fairank serve`` flags appended to every worker's command
        line (e.g. ``["--batch-workers", "32", "--verbose"]``).
    warm_dir:
        Optional warm-start root.  Each slot gets its own
        ``--warm-dir <warm_dir>/slot-<n>`` (per-slot subdirectories keep
        concurrent shutdown saves from colliding); because the flag is part
        of the slot's boot argv, a crash-restarted replacement reloads the
        slot's warm bundle automatically.
    command:
        Override the worker command line (tests); a callable of
        ``(snapshot_path, host) -> argv`` (``worker_arguments`` are still
        appended).
    """

    def __init__(
        self,
        snapshot: Union[str, Path],
        size: int,
        *,
        host: str = "127.0.0.1",
        boot_timeout_s: float = 60.0,
        backoff_base_s: float = 0.25,
        backoff_max_s: float = 5.0,
        worker_arguments: Sequence[str] = (),
        warm_dir: Optional[Union[str, Path]] = None,
        command: Optional[Callable[[Path, str], Sequence[str]]] = None,
    ) -> None:
        if size < 1:
            raise ServiceError(f"a worker pool needs at least 1 worker, got {size}")
        self.snapshot = Path(snapshot)
        if not self.snapshot.is_file():
            raise ServiceError(
                f"cannot boot workers: catalog snapshot {self.snapshot} does not exist"
            )
        self.host = host
        self.boot_timeout_s = boot_timeout_s
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self._command = command or _default_worker_command
        self._worker_arguments = [str(argument) for argument in worker_arguments]
        self._warm_dir = Path(warm_dir) if warm_dir is not None else None
        self._env = _worker_env()
        self._slots: List[Optional[WorkerHandle]] = [None] * size
        self._restarts = [0] * size
        # Why each slot needed lifecycle intervention: a worker that died
        # after serving ("crash") vs a replacement that never came up
        # ("failed_boot").  Surfaced in health payloads and metrics.
        self._restart_reasons: List[Dict[str, int]] = [
            {"crash": 0, "failed_boot": 0} for _ in range(size)
        ]
        self._restarting: set = set()
        # Processes spawned but not yet slotted (mid-boot); tracked so
        # ``stop()`` can terminate a replacement worker that a restart
        # thread is still readiness-polling.
        self._booting: set = set()
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._started = False

    # -- introspection ---------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._slots)

    def peek(self, slot: int) -> Optional[WorkerHandle]:
        """The slot's current handle (None while it is down/restarting)."""
        with self._lock:
            self._reap_locked()
            return self._slots[slot]

    def restarts(self, slot: Optional[int] = None) -> int:
        """Restart count for one slot (or the whole fleet)."""
        with self._lock:
            if slot is not None:
                return self._restarts[slot]
            return sum(self._restarts)

    def restart_reasons(self, slot: int) -> Dict[str, int]:
        """Why the slot needed intervention: crash and failed-boot counts."""
        with self._lock:
            return dict(self._restart_reasons[slot])

    @property
    def alive_count(self) -> int:
        with self._lock:
            self._reap_locked()
            return sum(1 for handle in self._slots if handle is not None)

    def candidates(self, preferred_slot: int) -> List[WorkerHandle]:
        """Live workers in retry order: the routed slot first, then the rest.

        A request whose preferred worker just died is retried on the
        neighbouring slots (losing only cache affinity, never the answer —
        every worker serves the same snapshot).  Reading the candidate list
        also *reaps*: a slot whose process died since the last look is
        scheduled for its backoff restart right here, so crashes are healed
        by the next request that notices them, not only by failed forwards.
        """
        with self._lock:
            self._reap_locked()
            ordered = [
                self._slots[(preferred_slot + offset) % self.size]
                for offset in range(self.size)
            ]
        return [handle for handle in ordered if handle is not None]

    def describe(self) -> Dict[str, object]:
        """Pool metadata for the router's aggregated health payload."""
        with self._lock:
            self._reap_locked()
            slots = [
                {
                    **(
                        {"slot": index, "alive": False}
                        if handle is None
                        else handle.describe()
                    ),
                    "restarts": self._restarts[index],
                    "restart_reasons": dict(self._restart_reasons[index]),
                }
                for index, handle in enumerate(self._slots)
            ]
        return {
            "workers": self.size,
            "alive": sum(1 for entry in slots if entry["alive"]),
            "restarts": sum(self._restarts),
            "snapshot": str(self.snapshot),
            "slots": slots,
        }

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Boot every worker (concurrently) and wait until all are ready."""
        if self._started:
            raise ServiceError("this worker pool has already been started")
        self._started = True
        from concurrent.futures import ThreadPoolExecutor, wait

        with ThreadPoolExecutor(max_workers=self.size) as boots:
            futures = [boots.submit(self._boot_worker, slot) for slot in range(self.size)]
            wait(futures)
        booted = [future for future in futures if future.exception() is None]
        failed = [future for future in futures if future.exception() is not None]
        if failed:
            # One worker failing must not leak its booted siblings.
            for future in booted:
                handle = future.result()
                handle.process.terminate()
            self._stopping.set()
            raise failed[0].exception()
        with self._lock:
            for future in booted:
                handle = future.result()
                self._slots[handle.slot] = handle
        return self

    def stop(self, timeout_s: float = 15.0) -> None:
        """SIGTERM the fleet (workers drain), SIGKILL stragglers.

        Covers slotted workers *and* any replacement a restart thread is
        still booting (``_stopping`` also aborts those boots at their next
        poll, so the restart thread exits promptly).
        """
        self._stopping.set()
        with self._lock:
            processes = [
                handle.process for handle in self._slots if handle is not None
            ]
            processes.extend(self._booting)
            self._slots = [None] * self.size
        for process in processes:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + timeout_s
        for process in processes:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- boot / restart machinery ---------------------------------------------

    def _boot_worker(self, slot: int) -> WorkerHandle:
        """Spawn one worker and wait for port announcement + health readiness."""
        argv = list(self._command(self.snapshot, self.host)) + self._worker_arguments
        if self._warm_dir is not None:
            # Per-slot bundle directories: slots save on their own shutdown
            # without racing each other, and a crash-restarted replacement
            # (this method re-runs with the same slot) reloads its own state.
            argv += ["--warm-dir", str(self._warm_dir / f"slot-{slot}")]
        # The slot travels in the environment so every structured log event
        # the worker emits carries a "worker" field (see repro.obs.log).
        env = dict(self._env)
        env[WORKER_SLOT_ENV] = str(slot)
        try:
            # A fresh session detaches workers from the terminal's process
            # group: Ctrl-C on `fairank serve` reaches only the router, which
            # then stops the fleet deterministically (drain, then SIGTERM).
            process = subprocess.Popen(
                argv,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
                start_new_session=True,
            )
        except OSError as error:
            raise ServiceError(f"cannot spawn worker {slot}: {error}") from None
        with self._lock:
            self._booting.add(process)
        try:
            pump = _StdoutPump(process)
            deadline = time.monotonic() + self.boot_timeout_s
            port = self._await_port(slot, process, pump, deadline)
            base_url = f"http://{self.host}:{port}"
            self._await_health(slot, process, pump, base_url, deadline)
        finally:
            with self._lock:
                self._booting.discard(process)
        get_logger().event("worker_ready", slot=slot, pid=process.pid, port=port)
        return WorkerHandle(
            slot=slot, process=process, port=port, base_url=base_url, pump=pump
        )

    def _boot_failure(
        self, slot: int, process: subprocess.Popen, pump: _StdoutPump, reason: str
    ) -> ServiceError:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
        tail = "\n".join(pump.tail)
        detail = f"; last output:\n{tail}" if tail else ""
        return ServiceError(f"worker {slot} failed to boot: {reason}{detail}")

    def _await_port(
        self,
        slot: int,
        process: subprocess.Popen,
        pump: _StdoutPump,
        deadline: float,
    ) -> int:
        while time.monotonic() < deadline:
            if self._stopping.is_set():
                raise self._boot_failure(slot, process, pump, "the pool is stopping")
            if pump.port_found.wait(timeout=0.1) and pump.port is not None:
                return pump.port
            if process.poll() is not None and pump.port is None:
                raise self._boot_failure(
                    slot, process, pump,
                    f"process exited with code {process.returncode} before binding",
                )
        raise self._boot_failure(
            slot, process, pump,
            f"no bound port announced within {self.boot_timeout_s:.0f}s",
        )

    def _await_health(
        self,
        slot: int,
        process: subprocess.Popen,
        pump: _StdoutPump,
        base_url: str,
        deadline: float,
    ) -> None:
        import json

        while time.monotonic() < deadline:
            if self._stopping.is_set():
                raise self._boot_failure(slot, process, pump, "the pool is stopping")
            if process.poll() is not None:
                raise self._boot_failure(
                    slot, process, pump,
                    f"process exited with code {process.returncode} during readiness",
                )
            try:
                with urllib.request.urlopen(f"{base_url}/v2/health", timeout=2) as response:
                    payload = json.loads(response.read())
                if payload.get("status") == "ok":
                    return
            # Readiness poll: the worker is still booting, so refused
            # connections / partial JSON are the expected steady state
            # until the boot deadline fires.
            # fairlint: disable=FL007 -- boot-poll retry; deadline-bounded
            except (OSError, ValueError):
                pass
            self._stopping.wait(timeout=0.05)
        raise self._boot_failure(
            slot, process, pump,
            f"/v2/health never answered ok within {self.boot_timeout_s:.0f}s",
        )

    def report_failure(self, handle: WorkerHandle) -> None:
        """The router observed a transport failure against ``handle``.

        Only a *dead* process triggers a restart — a transient socket error
        against a live worker is the request's problem (it was already
        retried elsewhere), not a lifecycle event.  Restarting happens on a
        daemon thread so the reporting request is never blocked by a boot.
        """
        if self._stopping.is_set():
            return
        with self._lock:
            if self._slots[handle.slot] is not handle:
                return  # stale handle: the slot was already replaced
            if handle.process.poll() is None:
                return
            self._retire_locked(handle.slot, handle)

    def _retire_locked(self, slot: int, handle: WorkerHandle) -> None:
        """Record a crashed worker and schedule its restart (lock must be held).

        The crash is a first-class lifecycle event: counted per slot with
        its reason, logged structured (slot, pid, exit code, uptime), and
        then healed by the backoff restart thread.
        """
        self._slots[slot] = None
        self._restart_reasons[slot]["crash"] += 1
        get_registry().counter(
            "fairank_worker_incidents_total",
            "Worker lifecycle incidents by slot and reason",
        ).inc(slot=str(slot), reason="crash")
        get_logger().event(
            "worker_crash",
            slot=slot,
            pid=handle.process.pid,
            returncode=handle.process.returncode,
            uptime_s=round(time.monotonic() - handle.started_at, 3),
        )
        self._schedule_restart_locked(slot)

    def _reap_locked(self) -> None:
        """Drop dead handles and schedule their restarts (lock must be held)."""
        if self._stopping.is_set():
            return
        for slot, handle in enumerate(self._slots):
            if handle is not None and handle.process.poll() is not None:
                self._retire_locked(slot, handle)

    def _schedule_restart_locked(self, slot: int) -> None:
        """Kick off the slot's backoff restart thread (lock must be held)."""
        if self._stopping.is_set() or slot in self._restarting:
            return
        self._restarting.add(slot)
        threading.Thread(
            target=self._restart_slot, args=(slot,), daemon=True
        ).start()

    def _restart_slot(self, slot: int) -> None:
        attempt = self._restarts[slot]
        try:
            while not self._stopping.is_set():
                delay = min(self.backoff_base_s * (2 ** attempt), self.backoff_max_s)
                if self._stopping.wait(timeout=delay):
                    return
                try:
                    handle = self._boot_worker(slot)
                except ServiceError as error:
                    attempt += 1
                    with self._lock:
                        self._restart_reasons[slot]["failed_boot"] += 1
                    get_registry().counter(
                        "fairank_worker_incidents_total",
                        "Worker lifecycle incidents by slot and reason",
                    ).inc(slot=str(slot), reason="failed_boot")
                    get_logger().event(
                        "worker_boot_failed",
                        slot=slot,
                        attempt=attempt,
                        reason=str(error).splitlines()[0],
                    )
                    continue
                with self._lock:
                    if self._stopping.is_set():
                        handle.process.terminate()
                        return
                    self._restarts[slot] += 1
                    restarts = self._restarts[slot]
                    self._slots[slot] = handle
                get_logger().event(
                    "worker_restarted",
                    slot=slot,
                    pid=handle.process.pid,
                    restarts=restarts,
                )
                return
        finally:
            with self._lock:
                self._restarting.discard(slot)
