"""Deterministic fingerprint routing: which worker serves which request.

The router's one job is *stickiness*: every request that touches the same
resources must land on the same worker, so that worker's materialized score
vectors (:class:`~repro.core.scorestore.ScoreStore`) and result cache serve
the whole key's traffic.  Three small pure functions implement it:

1. :func:`request_references` extracts the ``(kind, name)`` resource
   references from a wire-protocol-v2 request payload (dataset, scoring
   function(s), marketplace(s)) without validating the request — the worker
   stays the single validation authority;
2. :func:`routing_key` resolves each referenced name through the snapshot's
   fingerprint index (:func:`repro.snapshot.snapshot_fingerprints`) and
   hashes the sorted resolved references, so routing follows resource
   *content*: renaming a dataset does not reshuffle the fleet, and two names
   for identical content share a worker's warm stores;
3. :func:`worker_slot` maps a key onto one of N workers.

A payload with no recognisable references (malformed JSON, missing fields)
gets the empty key and deterministically routes to slot 0, where the worker
produces exactly the error envelope a single-process deployment would.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Mapping, Optional, Tuple

__all__ = ["request_references", "routing_key", "worker_slot"]

#: ``(kind, name)`` pairs — the same reference shape the CLI's catalog
#: resolution check uses.
Reference = Tuple[str, str]

#: ``(kind, name) -> content fingerprint``, as read from a snapshot file.
FingerprintIndex = Dict[Reference, str]


def request_references(payload: Mapping[str, object]) -> Tuple[Reference, ...]:
    """The catalogue resources a request payload references, sorted.

    Tolerant by design: unknown fields are ignored and nothing is validated,
    so the router can compute a slot for *any* body and leave rejection to
    the worker.  The request ``kind`` is deliberately not part of the result:
    a ``quantify``, ``breakdown`` and ``sweep`` over the same (dataset,
    function) pair should share one worker's score store.
    """
    references = set()
    for field, kind in (("dataset", "dataset"), ("function", "function"),
                        ("marketplace", "marketplace")):
        value = payload.get(field)
        if isinstance(value, str) and value:
            references.add((kind, value))
    for field, kind in (("functions", "function"), ("marketplaces", "marketplace")):
        value = payload.get(field)
        if isinstance(value, (list, tuple)):
            for name in value:
                if isinstance(name, str) and name:
                    references.add((kind, name))
    return tuple(sorted(references))


def routing_key(
    references: Tuple[Reference, ...],
    fingerprints: Optional[FingerprintIndex] = None,
) -> str:
    """The deterministic routing key for a set of resource references.

    Each reference resolves to its content fingerprint when the index knows
    it (the shared-nothing router reads the index straight from the snapshot
    file's metadata) and falls back to the raw name otherwise, so routing
    still works for resources registered after the snapshot was taken.
    Returns ``""`` for an empty reference set.
    """
    if not references:
        return ""
    index = fingerprints or {}
    parts = [
        f"{kind}={index.get((kind, name), name)}" for kind, name in references
    ]
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()


def worker_slot(key: str, workers: int) -> int:
    """Map a routing key onto one of ``workers`` slots (stable across calls)."""
    if workers < 1:
        raise ValueError(f"worker_slot needs at least 1 worker, got {workers}")
    if workers == 1 or not key:
        return 0
    return int(key[:16], 16) % workers
