"""Fingerprint-routed multi-worker serving (``fairank serve --workers N``).

One ``fairank serve`` process scales until a single Python process is the
bottleneck; beyond that a deployment is *sharded*: N worker processes, each
booted from the same catalog snapshot (so every worker serves byte-identical
answers), behind a :class:`~repro.shard.router.ShardRouter` — a shared-nothing
HTTP proxy that routes each request by the **content fingerprints** of the
resources it references.  Requests over the same (dataset, function) pair
always land on the same worker, so that worker's
:class:`~repro.core.scorestore.ScoreStore` pool and result cache stay hot
while the fleet as a whole serves the full catalogue in parallel.

* :mod:`repro.shard.routing` — the deterministic routing function
  (references → fingerprints → worker slot);
* :mod:`repro.shard.pool` — :class:`WorkerPool`, the subprocess lifecycle:
  boot on ephemeral ports, readiness-poll ``/v2/health``, restart-on-crash
  with capped exponential backoff;
* :mod:`repro.shard.router` — :class:`ShardRouter`, the stdlib
  ``ThreadingHTTPServer`` front: per-kind forwarding with retry-on-failure,
  ``/v2/batch`` split/fan-out/reassembly, aggregated ``/v2/health`` and a
  proxied ``/v2/catalog``.
"""

from repro.shard.pool import WorkerHandle, WorkerPool
from repro.shard.router import ShardRouter
from repro.shard.routing import request_references, routing_key, worker_slot

__all__ = [
    "ShardRouter",
    "WorkerHandle",
    "WorkerPool",
    "request_references",
    "routing_key",
    "worker_slot",
]
