"""The shard router: one HTTP front door over N snapshot-booted workers.

:class:`ShardRouter` speaks exactly the surface of a single-process
:class:`~repro.server.http.FairnessHTTPServer` — same endpoints, same status
mapping, same envelopes — so :class:`~repro.server.client.HTTPFairnessClient`
code runs unchanged against either.  It is *shared-nothing*: the router
holds no dataset, no score store and no result cache, only the snapshot's
``(kind, name) -> fingerprint`` index and the worker pool.  Per endpoint:

* ``POST /v2/<kind>`` — compute the routing slot from the body's resource
  references (:mod:`repro.shard.routing`), forward the body verbatim to the
  slot's worker and relay its response.  A worker that dies mid-request is
  reported to the pool (which restarts it with backoff) and the request
  retries on the next live worker — pure queries are idempotent, so a
  mid-load crash loses no request;
* ``POST /v2/batch`` — split the batch by routing slot, fan the sub-batches
  out concurrently, and reassemble every worker's in-slot envelopes back
  into input order;
* ``GET /v2/health`` — aggregate per-worker liveness, cache and store-pool
  statistics around the router's own serving counters;
* ``GET /v2/metrics`` — merge the router's own registry (all families
  ``fairank_router_*``) with every live worker's ``/v2/metrics`` page into
  one fleet-wide Prometheus document;
* ``GET /v2/catalog`` — proxy any live worker (all serve the same snapshot).

Only when *no* worker can be reached within the retry budget does the
router answer itself: ``503`` with an ``unavailable`` transport payload (or
per-slot ``unavailable`` envelopes inside a batch).

Tracing: the ingress trace id (header-inherited or router-generated) rides
to the worker on ``X-Fairank-Trace``, so the worker's envelope ``timings``
carry the *same* trace id the router logs — one id spans both hops.  The
router additionally stamps its own forwarding time into the relayed
envelope as ``timings.route_ms``.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.obs.metrics import (
    MetricsRegistry,
    ParsedMetrics,
    get_registry,
    merge_parsed,
    parse_prometheus,
    render_parsed,
)
from repro.obs.trace import TRACE_HEADER, current_trace_id
from repro.server.http import (
    REQUEST_ENDPOINTS,
    V2ServerBase,
    _JSONRequestHandler,
    _transport_error,
)
from repro.service.jobs import PROTOCOL_VERSION
from repro.shard.pool import WorkerHandle, WorkerPool
from repro.shard.routing import (
    FingerprintIndex,
    request_references,
    routing_key,
    worker_slot,
)

__all__ = ["ShardRouter"]

#: Transport-level failures that mean "this worker did not answer" (and the
#: request should be retried on another worker).  ``HTTPError`` is *not* one
#: of them: a 4xx/5xx from a worker is a served response and is relayed.
_TRANSPORT_FAILURES = (urllib.error.URLError, http.client.HTTPException, OSError)


class _RouterHandler(_JSONRequestHandler):
    """Routes v2 traffic onto the pool's workers."""

    server: "ShardRouter"

    def _serve_catalog(self) -> None:
        self._forward_and_relay("/v2/catalog", None, "GET", 0)

    def _forward_and_relay(
        self, path: str, body: Optional[bytes], method: str, slot: int
    ) -> None:
        try:
            status, relayed = self.server.forward(path, body, method, slot)
        except ServiceError as error:
            self._send_json(503, _transport_error("unavailable", str(error)))
            return
        self._send_raw(status, relayed, "application/json; charset=utf-8")

    def _serve_kind(self, kind: str, path: str, raw: bytes) -> None:
        """Forward one per-kind request to its fingerprint-routed worker.

        The body is parsed only to *extract references* — it is forwarded
        verbatim, so worker responses (including validation errors for
        malformed bodies) match single-process serving; the only router
        addition is ``timings.route_ms`` stamped into a relayed envelope.
        """
        slot = self.server.slot_for_body(raw)
        started = time.perf_counter()
        try:
            status, relayed = self.server.forward(path, raw, "POST", slot)
        except ServiceError as error:
            self._send_json(503, _transport_error("unavailable", str(error)))
            return
        route_ms = (time.perf_counter() - started) * 1000.0
        self.server.obs.request(
            "route",
            route_ms,
            trace_id=current_trace_id(),
            kind=kind,
            slot=slot,
            status=status,
        )
        self._send_raw(
            status,
            self.server.annotate_envelope(relayed, route_ms),
            "application/json; charset=utf-8",
        )

    def _serve_batch(self, raw: bytes) -> None:
        """Split a batch by routing slot, fan out, reassemble in input order."""
        try:
            document = json.loads(raw) if raw else None
        except ValueError:
            document = None
        entries = document.get("requests") if isinstance(document, dict) else document
        if not isinstance(entries, list) or not entries:
            # Not a routable batch shape: forward verbatim so the worker
            # produces exactly the single-process validation error.
            self._forward_and_relay("/v2/batch", raw, "POST", 0)
            return
        groups: Dict[int, List[int]] = {}
        for index, entry in enumerate(entries):
            references = request_references(entry) if isinstance(entry, dict) else ()
            key = routing_key(references, self.server.fingerprints)
            groups.setdefault(worker_slot(key, self.server.pool.size), []).append(index)
        results: List[Optional[Dict[str, object]]] = [None] * len(entries)

        def run_group(slot: int, indices: List[int]) -> None:
            body = json.dumps(
                {"requests": [entries[index] for index in indices]}
            ).encode("utf-8")
            envelopes: Optional[List[Dict[str, object]]] = None
            try:
                status, relayed = self.server.forward("/v2/batch", body, "POST", slot)
                payload = json.loads(relayed)
                if status == 200 and isinstance(payload.get("results"), list):
                    group_results = payload["results"]
                    if len(group_results) == len(indices):
                        envelopes = group_results
            except (ServiceError, ValueError):
                envelopes = None
            if envelopes is None:
                envelopes = [
                    self.server.unavailable_envelope(entries[index])
                    for index in indices
                ]
            for index, envelope in zip(indices, envelopes):
                results[index] = envelope

        with ThreadPoolExecutor(max_workers=min(len(groups), 16)) as fan_out:
            for slot, indices in groups.items():
                fan_out.submit(run_group, slot, indices)
        self._send_json(
            200, {"protocol": PROTOCOL_VERSION, "results": results}
        )


class ShardRouter(V2ServerBase):
    """Fingerprint-routing HTTP proxy over a :class:`WorkerPool`.

    Parameters
    ----------
    pool:
        The (already started) worker pool requests are routed onto.
    host / port:
        Bind address; ``port=0`` picks a free ephemeral port (see ``.port``).
    fingerprints:
        The snapshot's ``(kind, name) -> fingerprint`` index
        (:func:`repro.snapshot.snapshot_fingerprints`); names missing from
        the index still route deterministically by name.
    forward_timeout_s:
        Socket timeout for one forwarded request (quantify searches over
        large populations can be slow cold).
    retry_window_s:
        How long a request keeps retrying when *no* worker is reachable
        (covers the pool's restart backoff for a single-worker fleet) before
        the router answers 503 itself.
    verbose:
        Emit a structured JSON log event for every request (stderr).
    slow_ms:
        Emit the structured event (marked ``"slow": true``) for any request
        at or above this many milliseconds, even without ``verbose``.
    """

    thread_name = "fairank-router"
    metrics_prefix = "fairank_router"

    def __init__(
        self,
        pool: WorkerPool,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        fingerprints: Optional[FingerprintIndex] = None,
        forward_timeout_s: float = 300.0,
        retry_window_s: float = 30.0,
        verbose: bool = False,
        slow_ms: Optional[float] = None,
    ) -> None:
        super().__init__(host, port, _RouterHandler)
        self.pool = pool
        self.fingerprints: FingerprintIndex = dict(fingerprints or {})
        self.forward_timeout_s = forward_timeout_s
        self.retry_window_s = retry_window_s
        self.configure_observability(verbose=verbose, slow_ms=slow_ms)
        self._retried_forwards = 0
        # Set once the router starts closing: interrupts the retry pacing of
        # any request still sweeping the fleet, so server_close()'s drain is
        # never stalled for the rest of a retry window.
        self._stopping = threading.Event()

    def server_close(self) -> None:
        """Close the listener, interrupting any in-flight retry pauses first.

        ``server_close`` drains (it joins in-flight handler threads); a
        handler pacing between fleet sweeps wakes immediately and answers
        503 instead of serving out up to ``retry_window_s`` of sleep.
        """
        self._stopping.set()
        super().server_close()

    # -- routing / forwarding --------------------------------------------------

    def slot_for_body(self, raw: bytes) -> int:
        """The routing slot for a request body (tolerant of malformed JSON)."""
        references: Tuple = ()
        try:
            payload = json.loads(raw) if raw else None
        except ValueError:
            payload = None
        if isinstance(payload, dict):
            references = request_references(payload)
        return worker_slot(routing_key(references, self.fingerprints), self.pool.size)

    def _send(
        self,
        worker: WorkerHandle,
        path: str,
        body: Optional[bytes],
        method: str,
        timeout_s: Optional[float] = None,
    ) -> Tuple[int, bytes]:
        """One HTTP exchange with one worker (no retry).

        The active trace id (if any) travels on ``X-Fairank-Trace`` so the
        worker joins the router's trace instead of opening its own.
        """
        headers = {} if body is None else {"Content-Type": "application/json"}
        trace_id = current_trace_id()
        if trace_id is not None:
            headers[TRACE_HEADER] = trace_id
        request = urllib.request.Request(
            f"{worker.base_url}{path}", data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout_s or self.forward_timeout_s
            ) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            # A non-2xx answer is a *served* response (error envelopes map to
            # 400/404/422/405); relay it instead of treating it as a failure.
            return error.code, error.read()

    def forward(
        self, path: str, body: Optional[bytes], method: str, preferred_slot: int
    ) -> Tuple[int, bytes]:
        """Forward to the preferred worker, retrying others on failure.

        Retries sweep the live candidates (preferred slot first); when the
        whole fleet is momentarily down (single worker mid-restart), the
        sweep repeats until ``retry_window_s`` elapses so the pool's
        restart-with-backoff can bring a worker back before the client sees
        an error.  Raises :class:`~repro.errors.ServiceError` when the
        window closes without an answer.
        """
        deadline = time.monotonic() + self.retry_window_s
        failures = 0
        while True:
            for worker in self.pool.candidates(preferred_slot):
                try:
                    status, relayed = self._send(worker, path, body, method)
                except _TRANSPORT_FAILURES:
                    failures += 1
                    with self._stats_lock:
                        self._retried_forwards += 1
                    get_registry().counter(
                        "fairank_router_retried_forwards_total",
                        "Forwards retried after a worker transport failure",
                    ).inc(slot=str(worker.slot))
                    self.obs.event(
                        "forward_retry",
                        path=path,
                        slot=worker.slot,
                        failures=failures,
                        trace_id=current_trace_id(),
                    )
                    self.pool.report_failure(worker)
                    continue
                return status, relayed
            if time.monotonic() >= deadline:
                self.obs.event(
                    "forward_unavailable",
                    path=path,
                    failures=failures,
                    trace_id=current_trace_id(),
                )
                raise ServiceError(
                    f"no worker answered {method} {path} within "
                    f"{self.retry_window_s:.0f}s ({failures} failed forward(s), "
                    f"{self.pool.alive_count}/{self.pool.size} workers alive)"
                )
            # Retry pacing between fleet sweeps; bounded by the retry-window
            # deadline above and holds no lock while paused.  Stop-aware: a
            # closing router wakes the pause instead of stalling the drain.
            if self._stopping.wait(timeout=0.05):
                self.obs.event(
                    "forward_abandoned",
                    path=path,
                    failures=failures,
                    trace_id=current_trace_id(),
                )
                raise ServiceError(
                    f"the router is shutting down; abandoned {method} {path} "
                    f"after {failures} failed forward(s)"
                )

    @staticmethod
    def annotate_envelope(relayed: bytes, route_ms: float) -> bytes:
        """Stamp the router's forwarding time into a relayed result envelope.

        Anything that does not parse as a protocol-v2 envelope (transport
        error payloads, malformed-body rejections) passes through verbatim.
        ``timings`` is outside the canonical response surface, so the
        re-serialisation keeps relayed responses byte-comparable to
        single-process serving where it matters.
        """
        try:
            payload = json.loads(relayed)
        except ValueError:
            return relayed
        if not isinstance(payload, dict) or "kind" not in payload:
            return relayed
        timings = payload.get("timings")
        timings = dict(timings) if isinstance(timings, dict) else {}
        timings["route_ms"] = round(route_ms, 3)
        payload["timings"] = timings
        return json.dumps(payload).encode("utf-8")

    def unavailable_envelope(self, entry: object) -> Dict[str, object]:
        """A protocol-v2 error envelope for a batch slot no worker served."""
        kind = entry.get("kind") if isinstance(entry, dict) else None
        return {
            "protocol": PROTOCOL_VERSION,
            "kind": str(kind) if kind else "unknown",
            "key": "",
            "payload": {},
            "cached": False,
            "elapsed_s": 0.0,
            "store_stats": None,
            "error": {
                "code": "unavailable",
                "message": "no worker was reachable for this batch slot",
            },
        }

    # -- observability ---------------------------------------------------------

    def _refresh_gauges(self, registry: MetricsRegistry) -> None:
        """Fleet gauges: live workers plus per-slot restart counts by reason."""
        super()._refresh_gauges(registry)
        registry.gauge(
            "fairank_router_workers_alive", "Workers currently answering"
        ).set(float(self.pool.alive_count))
        registry.gauge(
            "fairank_router_workers_total", "Configured worker slots"
        ).set(float(self.pool.size))
        restarts = registry.gauge(
            "fairank_router_worker_restarts", "Completed worker restarts by slot"
        )
        for slot in range(self.pool.size):
            restarts.set(float(self.pool.restarts(slot)), slot=str(slot))

    def metrics_text(self) -> str:
        """One Prometheus page for the whole fleet.

        The router's own families are namespaced ``fairank_router_*`` (plus
        the pool's ``fairank_worker_*`` lifecycle counters, which no worker
        emits), so merging them with the workers' pages cannot collide;
        identical series across workers (same family, same labels) sum,
        which is exactly the fleet-wide reading a scraper wants.  A worker
        that cannot be scraped (mid-restart) is skipped rather than failing
        the page.
        """
        registry = get_registry()
        self._refresh_gauges(registry)
        pages = [parse_prometheus(registry.render())]

        def scrape(slot: int) -> Optional[ParsedMetrics]:
            handle = self.pool.peek(slot)
            if handle is None:
                return None
            try:
                status, body = self._send(
                    handle, "/v2/metrics", None, "GET", timeout_s=5.0
                )
                if status != 200:
                    return None
                return parse_prometheus(body.decode("utf-8"))
            except (*_TRANSPORT_FAILURES, ValueError):
                return None

        with ThreadPoolExecutor(max_workers=self.pool.size) as scrapes:
            pages.extend(
                page for page in scrapes.map(scrape, range(self.pool.size)) if page
            )
        return render_parsed(merge_parsed(pages))

    # -- health ----------------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """Aggregate liveness + statistics across the fleet.

        ``status`` is ``ok`` only when every slot's worker answers its own
        health check; ``degraded`` while any slot is down or restarting
        (traffic still flows via retry), ``down`` when none answer.  The
        ``catalog`` counts are proxied from a live worker so the payload
        stays a superset of a single-process server's.
        """
        def probe(slot: int) -> Dict[str, object]:
            handle = self.pool.peek(slot)
            entry: Dict[str, object] = {
                "slot": slot,
                "alive": False,
                "restarts": self.pool.restarts(slot),
                "restart_reasons": self.pool.restart_reasons(slot),
            }
            if handle is None:
                return entry
            entry.update(handle.describe())
            entry["alive"] = False  # proven below by an actual answer
            try:
                # Short probe timeout: a hung worker must not stall the
                # aggregated health answer for the whole fleet.
                status, body = self._send(
                    handle, "/v2/health", None, "GET", timeout_s=5.0
                )
                payload = json.loads(body)
            except (*_TRANSPORT_FAILURES, ValueError):
                payload = None
                status = 0
            if status == 200 and isinstance(payload, dict):
                entry["alive"] = True
                entry["requests_served"] = payload.get("requests_served")
                entry["cache"] = payload.get("cache")
                entry["store_pool"] = payload.get("store_pool")
                counts = payload.get("catalog")
                if isinstance(counts, dict):
                    entry["_catalog"] = counts
            return entry

        # Probed concurrently so a wedged worker costs one probe timeout,
        # not one per slot.
        with ThreadPoolExecutor(max_workers=self.pool.size) as probes:
            worker_health = list(probes.map(probe, range(self.pool.size)))
        responding = sum(1 for entry in worker_health if entry["alive"])
        catalog_counts: Optional[Dict[str, object]] = None
        for entry in worker_health:
            counts = entry.pop("_catalog", None)
            if catalog_counts is None and counts is not None:
                catalog_counts = counts
        if responding == self.pool.size:
            status_label = "ok"
        elif responding:
            status_label = "degraded"
        else:
            status_label = "down"
        with self._stats_lock:
            retried = self._retried_forwards
        return {
            "status": status_label,
            "protocol": PROTOCOL_VERSION,
            "role": "shard-router",
            "uptime_s": self.uptime_s,
            "requests_served": self.requests_served,
            "retried_forwards": retried,
            "endpoints": list(REQUEST_ENDPOINTS)
            + ["batch", "catalog", "health", "metrics"],
            "routing": {
                "strategy": "resource-fingerprint",
                "fingerprints": len(self.fingerprints),
            },
            "workers": self.pool.describe() | {"health": worker_health},
            "catalog": catalog_counts or {},
        }
