"""Pre-defined group baselines from prior work.

The paper positions FaiRank against earlier group-fairness studies that
"either assumed that groups are pre-defined or that they are defined using a
single protected attribute (e.g., males vs females or whites vs blacks)"
(citing Hannák et al. [5] and Singh & Joachims [9]).  These baselines are
reproduced here so experiment E12 can show what the single-attribute view
misses: intersectional (subgroup) bias that only appears when several
protected attributes are combined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.formulations import Formulation, MOST_UNFAIR_AVG_EMD
from repro.core.partition import Partitioning
from repro.core.unfairness import unfairness
from repro.data.dataset import Dataset
from repro.errors import PartitioningError
from repro.scoring.base import ScoringFunction

__all__ = [
    "SingleAttributeResult",
    "single_attribute_baseline",
    "best_single_attribute",
    "predefined_groups_baseline",
]


@dataclass(frozen=True)
class SingleAttributeResult:
    """Unfairness measured when groups are defined by one protected attribute."""

    attribute: str
    partitioning: Partitioning
    unfairness: float

    def summary(self) -> Dict[str, object]:
        return {
            "attribute": self.attribute,
            "groups": list(self.partitioning.labels),
            "unfairness": self.unfairness,
        }


def single_attribute_baseline(
    dataset: Dataset,
    function: ScoringFunction,
    formulation: Formulation = MOST_UNFAIR_AVG_EMD,
    attributes: Optional[Sequence[str]] = None,
) -> List[SingleAttributeResult]:
    """Measure unfairness separately for each single protected attribute.

    This is the "males vs females", "whites vs blacks" view of prior work:
    one flat partitioning per protected attribute, no combinations.  Results
    are sorted best-first for the chosen objective.
    """
    dataset.require_non_empty()
    if attributes is None:
        attributes = dataset.schema.protected_names
    results: List[SingleAttributeResult] = []
    for attribute in attributes:
        dataset.schema.require_protected(attribute)
        if len(dataset.distinct_values(attribute)) < 2:
            continue
        partitioning = Partitioning.by_attributes(dataset, [attribute])
        value = unfairness(partitioning, function, formulation)
        results.append(
            SingleAttributeResult(attribute=attribute, partitioning=partitioning, unfairness=value)
        )
    if not results:
        raise PartitioningError(
            "no protected attribute has at least two values; the single-attribute "
            "baseline cannot form any groups"
        )
    results.sort(
        key=lambda r: (-r.unfairness if formulation.objective.is_maximizing else r.unfairness,
                       r.attribute)
    )
    return results


def best_single_attribute(
    dataset: Dataset,
    function: ScoringFunction,
    formulation: Formulation = MOST_UNFAIR_AVG_EMD,
    attributes: Optional[Sequence[str]] = None,
) -> SingleAttributeResult:
    """The single protected attribute exhibiting the most (or least) unfairness."""
    return single_attribute_baseline(dataset, function, formulation, attributes)[0]


def predefined_groups_baseline(
    dataset: Dataset,
    function: ScoringFunction,
    groups: Dict[str, Sequence[str]],
    formulation: Formulation = MOST_UNFAIR_AVG_EMD,
) -> Tuple[Partitioning, float]:
    """Unfairness for fully pre-defined groups given as ``label -> member ids``.

    Models prior work where an analyst supplies the groups of interest
    explicitly (e.g. the demographic segments of a platform study).  The
    groups must be disjoint and cover the whole dataset.
    """
    from repro.core.partition import Partition

    partitions = []
    for label, uids in groups.items():
        members = dataset.select_uids(uids)
        partitions.append(Partition(constraints=(("group", label),), members=members))
    partitioning = Partitioning(dataset, partitions)
    return partitioning, unfairness(partitioning, function, formulation)
