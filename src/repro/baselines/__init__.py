"""Baselines from prior work: single-attribute and pre-defined groups (S8)."""

from repro.baselines.predefined import (
    SingleAttributeResult,
    best_single_attribute,
    predefined_groups_baseline,
    single_attribute_baseline,
)

__all__ = [
    "SingleAttributeResult",
    "single_attribute_baseline",
    "best_single_attribute",
    "predefined_groups_baseline",
]
