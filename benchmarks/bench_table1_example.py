"""E1 — Table 1: regenerate the example dataset and its published f(w) scores."""

from benchmarks.conftest import run_and_report


def test_table1_example(benchmark):
    outcome = run_and_report(benchmark, "E1")
    table = outcome.tables[0]
    # Every published score must be reproduced exactly (weights 0.3 / 0.7).
    assert len(table) == 10
    assert all(row[-1] == "yes" for row in table.rows)
