"""E9 — JOB OWNER scenario: scoring-function variants for one job."""

from benchmarks.conftest import run_and_report


def test_job_owner_scenario(benchmark):
    outcome = run_and_report(benchmark, "E9", size=300, seed=7, sweep_steps=5)
    table = outcome.tables[0]
    assert len(table) >= 5  # base function plus the weight sweep
    values = table.column("unfairness")
    assert values == sorted(values)  # fairest first
    # Different weightings must produce measurably different unfairness.
    assert len({round(v, 6) for v in values}) > 1
    assert any("recommended" in note for note in table.notes)
