"""QUANTIFY hot path — score materialization vs. the seed re-scoring path.

The score store (:mod:`repro.core.scorestore`) materializes the full
per-(dataset, function) score vector once and derives every partition's
scores, histograms and candidate splits from row indices.  This benchmark
pins the perf trajectory of that layer:

* **speedup** — on a 10k-row synthetic population, QUANTIFY through the
  store must be at least 3x faster than the seed path (``materialize=False``,
  the pre-materialization behaviour);
* **exactness** — tree, unfairness, ``splits_evaluated`` and the breakdown
  must be byte-identical with and without the store;
* **compute-once** — on the bundled marketplace workload every individual is
  scored exactly once per scoring function;
* **columnar data plane** — at 100k rows, validate + cold QUANTIFY on a
  column-backed population must be at least 5x the per-row dict path, with
  byte-identical results;
* **million-row leg** — both backings QUANTIFY a 1M-row population in
  separate interpreters; the columnar one must win on wall-clock and peak
  RSS (``ru_maxrss``).

Results are written to ``BENCH_quantify.json`` at the repository root; CI
uploads the file as a workflow artifact so the trajectory is tracked per
commit.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from typing import Dict, List, Tuple

from repro.core.quantify import quantify
from repro.core.scorestore import ScoreStore
from repro.core.unfairness import unfairness_breakdown
from repro.data.dataset import Dataset
from repro.experiments.workloads import crowdsourcing_marketplace, synthetic_population
from repro.scoring.linear import LinearScoringFunction

from benchmarks.results import REPO_ROOT, write_results

#: The 10k-row scalability workload (E11's generator, fixed seed).
POPULATION_SIZE = 10_000
SEED = 7
MIN_PARTITION_SIZE = 25
ROUNDS = 5
REQUIRED_SPEEDUP = 3.0

#: The columnar-vs-dict data-plane leg (validate + cold QUANTIFY at 100k rows).
COLUMNAR_POPULATION = 100_000
COLUMNAR_MIN_PARTITION = 250
COLUMNAR_ROUNDS = 3
REQUIRED_COLUMNAR_SPEEDUP = 5.0

#: The million-row leg (one subprocess per backing, peak RSS via ru_maxrss).
MILLION = 1_000_000

_RESULTS_PATH = REPO_ROOT / "BENCH_quantify.json"


def _workload():
    dataset = synthetic_population(size=POPULATION_SIZE, seed=SEED)
    function = LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
    return dataset, function


def _best_of_interleaved(first, second, rounds: int = ROUNDS) -> Tuple[float, float]:
    """Best wall-clock of ``rounds`` alternating runs of two callables.

    Interleaving keeps a drifting machine load from penalising whichever
    side happens to be measured last.
    """
    best_first = best_second = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        first()
        best_first = min(best_first, time.perf_counter() - started)
        started = time.perf_counter()
        second()
        best_second = min(best_second, time.perf_counter() - started)
    return best_first, best_second


def _write_results(payload: Dict[str, object]) -> None:
    write_results(_RESULTS_PATH, payload, population=POPULATION_SIZE)


class _CountingFunction(LinearScoringFunction):
    """A linear scorer that counts its scoring passes and rows scored."""

    def __init__(self, base: LinearScoringFunction) -> None:
        self.__dict__.update(base.__dict__)
        self.calls = 0
        self.rows = 0

    def score_dataset(self, dataset):
        self.calls += 1
        self.rows += len(dataset)
        return LinearScoringFunction.score_dataset(self, dataset)


def test_store_speedup_and_exactness(benchmark):
    """Materialized QUANTIFY is >= 3x the seed path, with identical results."""
    dataset, function = _workload()

    def seed_run():
        return quantify(
            dataset,
            function,
            min_partition_size=MIN_PARTITION_SIZE,
            materialize=False,
        )

    def store_run():
        return quantify(dataset, function, min_partition_size=MIN_PARTITION_SIZE)

    seed_result = seed_run()
    store_result = benchmark.pedantic(store_run, rounds=1, iterations=1)

    # Byte-identical results: same tree, same unfairness, same work measure.
    assert store_result.summary() == seed_result.summary()
    assert store_result.unfairness == seed_result.unfairness
    assert store_result.splits_evaluated == seed_result.splits_evaluated
    assert store_result.partitioning.labels == seed_result.partitioning.labels
    assert store_result.partitioning.sizes == seed_result.partitioning.sizes
    seed_breakdown = unfairness_breakdown(seed_result.partitioning, function)
    store_breakdown = unfairness_breakdown(store_result.partitioning, function)
    assert store_breakdown.value == seed_breakdown.value
    assert store_breakdown.pairwise == seed_breakdown.pairwise
    assert store_breakdown.mean_scores == seed_breakdown.mean_scores

    seed_elapsed, store_elapsed = _best_of_interleaved(seed_run, store_run)
    speedup = seed_elapsed / max(store_elapsed, 1e-9)

    print()
    print(
        f"QUANTIFY {POPULATION_SIZE} rows: seed {seed_elapsed * 1000:.1f}ms  "
        f"store {store_elapsed * 1000:.1f}ms  speedup {speedup:.1f}x"
    )
    _write_results(
        {
            "quantify_10k": {
                "population": POPULATION_SIZE,
                "min_partition_size": MIN_PARTITION_SIZE,
                "seed_ms": round(seed_elapsed * 1000, 2),
                "store_ms": round(store_elapsed * 1000, 2),
                "speedup": round(speedup, 2),
                "required_speedup": REQUIRED_SPEEDUP,
                "partitions": len(store_result.partitioning),
                "splits_evaluated": store_result.splits_evaluated,
                "unfairness": store_result.unfairness,
            }
        }
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"score materialization must be >= {REQUIRED_SPEEDUP}x the seed path "
        f"(seed {seed_elapsed * 1000:.1f}ms, store {store_elapsed * 1000:.1f}ms, "
        f"{speedup:.2f}x)"
    )


def test_columnar_data_plane_speedup():
    """Columnar validate + cold QUANTIFY is >= 5x the dict path at 100k rows.

    Both packagings carry the same RNG draws (identical values, identical
    content fingerprint), so results must be byte-identical; only the data
    plane differs.  Every round constructs a fresh ``Dataset`` wrapper so
    per-object memos (integer codings, fingerprints) cannot leak between
    rounds.  Content hashing is reported separately, not asserted: the hash
    walks identical per-row bytes on either backing, so it measures the
    hash function, not the data plane.
    """
    function = LinearScoringFunction(
        {"Language Test": 0.5, "Rating": 0.5}, name="balanced"
    )
    row_dataset = synthetic_population(size=COLUMNAR_POPULATION, seed=SEED)
    columnar_dataset = synthetic_population(
        size=COLUMNAR_POPULATION, seed=SEED, columnar=True
    )
    schema = row_dataset.schema
    rows = row_dataset.individuals
    store = columnar_dataset.store
    assert store is not None

    def dict_pass():
        dataset = Dataset(schema, rows, name="bench-dict", validate=True)
        return quantify(
            dataset, function, min_partition_size=COLUMNAR_MIN_PARTITION
        )

    def columnar_pass():
        dataset = Dataset.from_store(
            schema, store, name="bench-columnar", validate=True
        )
        return quantify(
            dataset, function, min_partition_size=COLUMNAR_MIN_PARTITION
        )

    dict_result = dict_pass()
    columnar_result = columnar_pass()
    assert columnar_result.summary() == dict_result.summary()
    assert columnar_result.unfairness == dict_result.unfairness
    assert columnar_result.splits_evaluated == dict_result.splits_evaluated
    assert columnar_result.partitioning.labels == dict_result.partitioning.labels
    assert columnar_result.partitioning.sizes == dict_result.partitioning.sizes

    dict_elapsed, columnar_elapsed = _best_of_interleaved(
        dict_pass, columnar_pass, rounds=COLUMNAR_ROUNDS
    )
    speedup = dict_elapsed / max(columnar_elapsed, 1e-9)
    throughput = COLUMNAR_POPULATION / max(columnar_elapsed, 1e-9)

    print()
    print(
        f"data plane {COLUMNAR_POPULATION} rows: dict {dict_elapsed * 1000:.0f}ms  "
        f"columnar {columnar_elapsed * 1000:.0f}ms  speedup {speedup:.1f}x  "
        f"({throughput:,.0f} rows/s)"
    )
    _write_results(
        {
            "columnar_100k": {
                "population": COLUMNAR_POPULATION,
                "min_partition_size": COLUMNAR_MIN_PARTITION,
                "dict_ms": round(dict_elapsed * 1000, 2),
                "columnar_ms": round(columnar_elapsed * 1000, 2),
                "speedup": round(speedup, 2),
                "required_speedup": REQUIRED_COLUMNAR_SPEEDUP,
                "columnar_rows_per_s": round(throughput),
                "identical_results": True,
            }
        }
    )
    assert speedup >= REQUIRED_COLUMNAR_SPEEDUP, (
        f"columnar data plane must be >= {REQUIRED_COLUMNAR_SPEEDUP}x the dict "
        f"path (dict {dict_elapsed * 1000:.0f}ms, columnar "
        f"{columnar_elapsed * 1000:.0f}ms, {speedup:.2f}x)"
    )


#: Runs in a fresh interpreter per backing so ``ru_maxrss`` (the process
#: high-water mark) reflects exactly one data plane.  Prints one JSON line.
_MILLION_LEG_SCRIPT = """
import json, resource, sys, time
from repro.core.quantify import quantify
from repro.experiments.workloads import synthetic_population
from repro.scoring.linear import LinearScoringFunction

size, columnar = int(sys.argv[1]), sys.argv[2] == "columnar"
started = time.perf_counter()
dataset = synthetic_population(size=size, columnar=columnar)
build_s = time.perf_counter() - started
function = LinearScoringFunction(
    {"Language Test": 0.5, "Rating": 0.5}, name="balanced"
)
started = time.perf_counter()
result = quantify(dataset, function, min_partition_size=size // 400)
quantify_s = time.perf_counter() - started
print(json.dumps({
    "build_s": round(build_s, 3),
    "quantify_s": round(quantify_s, 3),
    "rows_per_s": round(size / quantify_s),
    "peak_rss_mb": round(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1),
    "unfairness": result.unfairness,
    "partitions": len(result.partitioning),
    "splits_evaluated": result.splits_evaluated,
}))
"""


def _run_million_leg(backing: str) -> Dict[str, object]:
    completed = subprocess.run(
        [sys.executable, "-c", _MILLION_LEG_SCRIPT, str(MILLION), backing],
        capture_output=True,
        text=True,
        check=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def test_million_row_leg():
    """QUANTIFY a million-row population on both backings; columnar must win.

    Each backing runs in its own interpreter so the kernel's peak-RSS
    high-water mark isolates one data plane.  The columnar backing must beat
    the dict backing on both quantify wall-clock and peak RSS, and the two
    runs must agree on every result number.
    """
    columnar = _run_million_leg("columnar")
    dict_path = _run_million_leg("dict")
    assert columnar["unfairness"] == dict_path["unfairness"]
    assert columnar["partitions"] == dict_path["partitions"]
    assert columnar["splits_evaluated"] == dict_path["splits_evaluated"]

    quantify_speedup = dict_path["quantify_s"] / max(columnar["quantify_s"], 1e-9)
    rss_ratio = dict_path["peak_rss_mb"] / max(columnar["peak_rss_mb"], 1e-9)
    print()
    print(
        f"1M rows columnar: build {columnar['build_s']}s  quantify "
        f"{columnar['quantify_s']}s ({columnar['rows_per_s']:,} rows/s)  "
        f"peak RSS {columnar['peak_rss_mb']}MB"
    )
    print(
        f"1M rows dict:     build {dict_path['build_s']}s  quantify "
        f"{dict_path['quantify_s']}s ({dict_path['rows_per_s']:,} rows/s)  "
        f"peak RSS {dict_path['peak_rss_mb']}MB"
    )
    print(f"quantify speedup {quantify_speedup:.1f}x, peak-RSS win {rss_ratio:.1f}x")
    _write_results(
        {
            "quantify_1m": {
                "population": MILLION,
                "columnar": columnar,
                "dict": dict_path,
                "quantify_speedup": round(quantify_speedup, 2),
                "peak_rss_ratio": round(rss_ratio, 2),
            }
        }
    )
    assert columnar["quantify_s"] < dict_path["quantify_s"]
    assert columnar["peak_rss_mb"] < dict_path["peak_rss_mb"]


def test_marketplace_scores_each_individual_once():
    """On the bundled marketplace, each individual is scored once per function."""
    marketplace = crowdsourcing_marketplace(size=400, seed=SEED)
    passes: List[Dict[str, object]] = []
    for job in marketplace:
        candidates = job.candidates(marketplace.workers)
        counting = _CountingFunction(job.function)
        result = quantify(candidates, counting, min_partition_size=5)
        assert (
            counting.calls == 1
        ), f"{job.title}: expected exactly one scoring pass, saw {counting.calls}"
        assert counting.rows == len(candidates)
        passes.append(
            {
                "job": job.title,
                "candidates": len(candidates),
                "scoring_passes": counting.calls,
                "partitions": len(result.partitioning),
            }
        )
    print()
    for entry in passes:
        print(
            f"{entry['job']:<22} {entry['candidates']:>5} candidates  "
            f"{entry['scoring_passes']} scoring pass  {entry['partitions']} groups"
        )
    _write_results({"marketplace_single_pass": passes})


def test_store_histogram_reuse_accounting():
    """The store's histogram memo carries most of the search's requests."""
    dataset, function = _workload()
    store = ScoreStore(dataset, function)
    quantify(dataset, function, min_partition_size=MIN_PARTITION_SIZE, store=store)
    stats = store.stats
    print()
    print(f"store after one search: {stats.describe()}")
    assert stats.scoring_passes == 1
    assert stats.fallback_scorings == 0
    # Re-running the identical search is served almost entirely from memos.
    quantify(dataset, function, min_partition_size=MIN_PARTITION_SIZE, store=store)
    warm = store.stats
    assert warm.scoring_passes == 1
    assert warm.histogram_hits > stats.histogram_hits
    _write_results(
        {
            "store_accounting": {
                "cold": stats.as_dict(),
                "warm_rerun": warm.as_dict(),
            }
        }
    )
