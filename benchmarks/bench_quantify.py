"""QUANTIFY hot path — score materialization vs. the seed re-scoring path.

The score store (:mod:`repro.core.scorestore`) materializes the full
per-(dataset, function) score vector once and derives every partition's
scores, histograms and candidate splits from row indices.  This benchmark
pins the perf trajectory of that layer:

* **speedup** — on a 10k-row synthetic population, QUANTIFY through the
  store must be at least 3x faster than the seed path (``materialize=False``,
  the pre-materialization behaviour);
* **exactness** — tree, unfairness, ``splits_evaluated`` and the breakdown
  must be byte-identical with and without the store;
* **compute-once** — on the bundled marketplace workload every individual is
  scored exactly once per scoring function.

Results are written to ``BENCH_quantify.json`` at the repository root; CI
uploads the file as a workflow artifact so the trajectory is tracked per
commit.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.core.quantify import quantify
from repro.core.scorestore import ScoreStore
from repro.core.unfairness import unfairness_breakdown
from repro.experiments.workloads import crowdsourcing_marketplace, synthetic_population
from repro.scoring.linear import LinearScoringFunction

from benchmarks.results import REPO_ROOT, write_results

#: The 10k-row scalability workload (E11's generator, fixed seed).
POPULATION_SIZE = 10_000
SEED = 7
MIN_PARTITION_SIZE = 25
ROUNDS = 5
REQUIRED_SPEEDUP = 3.0

_RESULTS_PATH = REPO_ROOT / "BENCH_quantify.json"


def _workload():
    dataset = synthetic_population(size=POPULATION_SIZE, seed=SEED)
    function = LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
    return dataset, function


def _best_of_interleaved(first, second, rounds: int = ROUNDS) -> Tuple[float, float]:
    """Best wall-clock of ``rounds`` alternating runs of two callables.

    Interleaving keeps a drifting machine load from penalising whichever
    side happens to be measured last.
    """
    best_first = best_second = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        first()
        best_first = min(best_first, time.perf_counter() - started)
        started = time.perf_counter()
        second()
        best_second = min(best_second, time.perf_counter() - started)
    return best_first, best_second


def _write_results(payload: Dict[str, object]) -> None:
    write_results(_RESULTS_PATH, payload, population=POPULATION_SIZE)


class _CountingFunction(LinearScoringFunction):
    """A linear scorer that counts its scoring passes and rows scored."""

    def __init__(self, base: LinearScoringFunction) -> None:
        self.__dict__.update(base.__dict__)
        self.calls = 0
        self.rows = 0

    def score_dataset(self, dataset):
        self.calls += 1
        self.rows += len(dataset)
        return LinearScoringFunction.score_dataset(self, dataset)


def test_store_speedup_and_exactness(benchmark):
    """Materialized QUANTIFY is >= 3x the seed path, with identical results."""
    dataset, function = _workload()

    def seed_run():
        return quantify(
            dataset,
            function,
            min_partition_size=MIN_PARTITION_SIZE,
            materialize=False,
        )

    def store_run():
        return quantify(dataset, function, min_partition_size=MIN_PARTITION_SIZE)

    seed_result = seed_run()
    store_result = benchmark.pedantic(store_run, rounds=1, iterations=1)

    # Byte-identical results: same tree, same unfairness, same work measure.
    assert store_result.summary() == seed_result.summary()
    assert store_result.unfairness == seed_result.unfairness
    assert store_result.splits_evaluated == seed_result.splits_evaluated
    assert store_result.partitioning.labels == seed_result.partitioning.labels
    assert store_result.partitioning.sizes == seed_result.partitioning.sizes
    seed_breakdown = unfairness_breakdown(seed_result.partitioning, function)
    store_breakdown = unfairness_breakdown(store_result.partitioning, function)
    assert store_breakdown.value == seed_breakdown.value
    assert store_breakdown.pairwise == seed_breakdown.pairwise
    assert store_breakdown.mean_scores == seed_breakdown.mean_scores

    seed_elapsed, store_elapsed = _best_of_interleaved(seed_run, store_run)
    speedup = seed_elapsed / max(store_elapsed, 1e-9)

    print()
    print(
        f"QUANTIFY {POPULATION_SIZE} rows: seed {seed_elapsed * 1000:.1f}ms  "
        f"store {store_elapsed * 1000:.1f}ms  speedup {speedup:.1f}x"
    )
    _write_results(
        {
            "quantify_10k": {
                "population": POPULATION_SIZE,
                "min_partition_size": MIN_PARTITION_SIZE,
                "seed_ms": round(seed_elapsed * 1000, 2),
                "store_ms": round(store_elapsed * 1000, 2),
                "speedup": round(speedup, 2),
                "required_speedup": REQUIRED_SPEEDUP,
                "partitions": len(store_result.partitioning),
                "splits_evaluated": store_result.splits_evaluated,
                "unfairness": store_result.unfairness,
            }
        }
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"score materialization must be >= {REQUIRED_SPEEDUP}x the seed path "
        f"(seed {seed_elapsed * 1000:.1f}ms, store {store_elapsed * 1000:.1f}ms, "
        f"{speedup:.2f}x)"
    )


def test_marketplace_scores_each_individual_once():
    """On the bundled marketplace, each individual is scored once per function."""
    marketplace = crowdsourcing_marketplace(size=400, seed=SEED)
    passes: List[Dict[str, object]] = []
    for job in marketplace:
        candidates = job.candidates(marketplace.workers)
        counting = _CountingFunction(job.function)
        result = quantify(candidates, counting, min_partition_size=5)
        assert (
            counting.calls == 1
        ), f"{job.title}: expected exactly one scoring pass, saw {counting.calls}"
        assert counting.rows == len(candidates)
        passes.append(
            {
                "job": job.title,
                "candidates": len(candidates),
                "scoring_passes": counting.calls,
                "partitions": len(result.partitioning),
            }
        )
    print()
    for entry in passes:
        print(
            f"{entry['job']:<22} {entry['candidates']:>5} candidates  "
            f"{entry['scoring_passes']} scoring pass  {entry['partitions']} groups"
        )
    _write_results({"marketplace_single_pass": passes})


def test_store_histogram_reuse_accounting():
    """The store's histogram memo carries most of the search's requests."""
    dataset, function = _workload()
    store = ScoreStore(dataset, function)
    quantify(dataset, function, min_partition_size=MIN_PARTITION_SIZE, store=store)
    stats = store.stats
    print()
    print(f"store after one search: {stats.describe()}")
    assert stats.scoring_passes == 1
    assert stats.fallback_scorings == 0
    # Re-running the identical search is served almost entirely from memos.
    quantify(dataset, function, min_partition_size=MIN_PARTITION_SIZE, store=store)
    warm = store.stats
    assert warm.scoring_passes == 1
    assert warm.histogram_hits > stats.histogram_hits
    _write_results(
        {
            "store_accounting": {
                "cold": stats.as_dict(),
                "warm_rerun": warm.as_dict(),
            }
        }
    )
