"""E5 — fairness formulations: objective x aggregation x distance."""

from benchmarks.conftest import run_and_report


def test_formulations(benchmark):
    outcome = run_and_report(benchmark, "E5", size=300, seed=7)
    records = outcome.tables[0].to_records()
    assert len(records) == 18  # 2 objectives x 3 aggregations x 3 distances

    def value(objective, aggregation, distance):
        for record in records:
            if (record["objective"], record["aggregation"], record["distance"]) == (
                objective, aggregation, distance,
            ):
                return record["unfairness"]
        raise AssertionError("missing combination")

    # The least-unfair search can never report more unfairness than the
    # most-unfair search under the same aggregation/distance.
    for aggregation in ("average", "maximum", "variance"):
        for distance in ("emd", "total_variation", "mean_gap"):
            assert value("least_unfair", aggregation, distance) <= \
                value("most_unfair", aggregation, distance) + 1e-9
