"""Warm-start restart — a rebooted fleet must serve hot, not recompute.

Boots a 2-worker fingerprint-routed fleet with ``--warm-dir``, drives the
64-request mixed-kind wave cold and warm, then SIGTERMs the fleet (each
worker saves its warm bundle) and boots a *second* fleet from the same
directory.  The restarted fleet's very first wave must be:

* **byte-identical** to both waves of the first life (same canonicals);
* **warm**: first-request p50 within 2x of the first life's steady-state
  warm p50 (the cold wave today runs ~4-5x warmer-than-warm, so this gate
  fails whenever a reboot silently recomputes instead of reloading);
* **load-verified**: the store pools report loaded stores and zero scoring
  passes before the wave lands.

Percentiles for all three waves land in ``BENCH_warmstart.json``.
"""

from __future__ import annotations

import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List

from repro.errors import ServiceError
from repro.server import HTTPFairnessClient

from benchmarks.bench_server import (
    CONCURRENT_REQUESTS,
    _latency_block,
    build_service,
    mixed_requests,
)
from benchmarks.results import REPO_ROOT, write_results

_RESULTS_PATH = REPO_ROOT / "BENCH_warmstart.json"

#: The acceptance gate: restarted-fleet first-request p50 vs warm p50.
WARM_STARTED_MAX_RATIO = 2.0


def _drive_waves(
    snapshot: Path, workers: int, requests, warm_dir: Path, waves: List[str]
) -> Dict[str, object]:
    """One fleet life: boot with ``warm_dir``, fire the named waves, stop.

    Stopping SIGTERMs the workers, which drain and save their warm bundles
    — the stop is part of the scenario, not just cleanup.
    """
    from repro.shard import ShardRouter, WorkerPool
    from repro.snapshot import snapshot_fingerprints

    pool = WorkerPool(snapshot, workers, warm_dir=warm_dir)
    pool.start()
    router = ShardRouter(pool, fingerprints=snapshot_fingerprints(snapshot))
    router.serve_in_background()
    try:
        client = HTTPFairnessClient(router.base_url, timeout=300.0)

        def fire(index: int):
            started = time.perf_counter()
            for attempt in range(3):
                try:
                    result = client._run(requests[index])
                    break
                except (ConnectionResetError, ServiceError) as error:
                    # The same connect-burst noise bench_server retries: a
                    # 64-way simultaneous connect can reset on the
                    # client->router hop; the retry counts against latency.
                    connect_noise = isinstance(error, ConnectionResetError) or (
                        "cannot reach" in str(error)
                    )
                    if attempt == 2 or not connect_noise:
                        raise
            return index, result, time.perf_counter() - started

        measured: Dict[str, Dict[str, object]] = {}
        canonicals: List[str] = []
        for wave in waves:
            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=len(requests)) as burst:
                outcomes = list(burst.map(fire, range(len(requests))))
            wall_clock = time.perf_counter() - started
            assert all(result.ok for _, result, _ in outcomes)
            measured[wave] = {
                "wall_clock_s": round(wall_clock, 4),
                "throughput_rps": round(len(requests) / wall_clock, 1),
                "latency_ms": _latency_block(
                    [elapsed for _, _, elapsed in outcomes]
                ),
            }
            canonicals = [
                result.canonical()
                for _, result, _ in sorted(outcomes, key=lambda item: item[0])
            ]
        pools = [
            entry["store_pool"]
            for entry in client.health()["workers"]["health"]
        ]
        return {
            "workers": workers,
            "stores": sum(stats["stores"] for stats in pools),
            "scoring_passes": sum(stats["scoring_passes"] for stats in pools),
            **measured,
            "_canonicals": canonicals,
        }
    finally:
        router.shutdown()
        router.server_close()
        pool.stop()  # SIGTERM: each worker saves its warm bundle


def _pool_accounting(snapshot: Path, workers: int, warm_dir: Path) -> Dict[str, int]:
    """Boot the restarted fleet and read its store pools *before* traffic."""
    from repro.shard import ShardRouter, WorkerPool
    from repro.snapshot import snapshot_fingerprints

    pool = WorkerPool(snapshot, workers, warm_dir=warm_dir)
    pool.start()
    router = ShardRouter(pool, fingerprints=snapshot_fingerprints(snapshot))
    router.serve_in_background()
    try:
        client = HTTPFairnessClient(router.base_url, timeout=120.0)
        pools = [
            entry["store_pool"]
            for entry in client.health()["workers"]["health"]
        ]
        return {
            "stores": sum(stats["stores"] for stats in pools),
            "scoring_passes": sum(stats["scoring_passes"] for stats in pools),
        }
    finally:
        router.shutdown()
        router.server_close()
        pool.stop()


def test_restarted_fleet_serves_within_2x_of_warm():
    service = build_service()
    requests = mixed_requests(CONCURRENT_REQUESTS)
    assert len({request.kind for request in requests}) == 7
    workers = 2

    with tempfile.TemporaryDirectory() as workdir:
        snapshot = Path(workdir) / "deployment.json"
        service.catalog.save(snapshot)
        warm_dir = Path(workdir) / "warm"

        first_life = _drive_waves(
            snapshot, workers, requests, warm_dir, waves=["cold", "warm"]
        )
        assert list(warm_dir.glob("slot-*/manifest.json")), (
            "graceful fleet stop saved no warm bundles"
        )
        # A probe boot proves the reload happens before any traffic: stores
        # are back, and not one scoring pass has run.
        preloaded = _pool_accounting(snapshot, workers, warm_dir)
        assert preloaded["stores"] >= 1
        assert preloaded["scoring_passes"] == 0
        second_life = _drive_waves(
            snapshot, workers, requests, warm_dir, waves=["warm_started"]
        )

    mismatched = [
        requests[index].kind
        for index, (left, right) in enumerate(
            zip(first_life.pop("_canonicals"), second_life.pop("_canonicals"))
        )
        if left != right
    ]
    assert not mismatched, f"restarted fleet diverged: {mismatched}"
    # The restarted fleet served the whole wave without re-materializing.
    assert second_life["scoring_passes"] == 0

    warm_p50 = first_life["warm"]["latency_ms"]["p50"]
    cold_p50 = first_life["cold"]["latency_ms"]["p50"]
    started_p50 = second_life["warm_started"]["latency_ms"]["p50"]
    # Sub-millisecond warm p50s would make the ratio pure jitter; the floor
    # keeps the gate meaningful on fast machines without loosening it.
    ratio = round(started_p50 / max(warm_p50, 1.0), 2)
    assert ratio <= WARM_STARTED_MAX_RATIO, (
        f"restarted fleet first-request p50 {started_p50} ms is {ratio}x the "
        f"steady-state warm p50 {warm_p50} ms (gate: {WARM_STARTED_MAX_RATIO}x)"
    )

    block = {
        "requests": len(requests),
        "concurrency": CONCURRENT_REQUESTS,
        "workers": workers,
        "byte_identical_across_restart": True,
        "preloaded_before_traffic": preloaded,
        "warm_started_vs_warm_p50_ratio": ratio,
        "gate_max_ratio": WARM_STARTED_MAX_RATIO,
        "first_life": first_life,
        "restarted": second_life,
    }
    write_results(
        _RESULTS_PATH,
        {"warmstart_restarted_fleet": block},
        synthetic_500=500,
        synthetic_200=200,
        marketplace=120,
    )
    print(
        f"\nrestarted {workers}-worker fleet: warm-started p50 {started_p50} ms "
        f"vs warm p50 {warm_p50} ms (ratio {ratio}x, gate "
        f"{WARM_STARTED_MAX_RATIO}x; cold was {cold_p50} ms)"
    )
