"""E10 — END-USER scenario: how a group fares across jobs and marketplaces."""

from benchmarks.conftest import run_and_report


def test_end_user_scenario(benchmark):
    outcome = run_and_report(benchmark, "E10", workers=250, seed=11)
    assert len(outcome.tables) >= 2
    for table in outcome.tables:
        assert len(table) >= 1
        assert any("best option" in note for note in table.notes)
        # Rows are sorted so the group's best option comes first.
        gaps = table.column("gap")
        assert gaps == sorted(gaps, reverse=True)
