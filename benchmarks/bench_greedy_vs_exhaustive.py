"""E4 — greedy QUANTIFY vs the exhaustive optimum: quality ratio and speed-up."""

from benchmarks.conftest import run_and_report


def test_greedy_vs_exhaustive(benchmark):
    outcome = run_and_report(
        benchmark, "E4", sizes=(60, 120, 200), attribute_counts=(2, 3), seed=7
    )
    records = outcome.tables[0].to_records()
    assert records
    for record in records:
        # The heuristic can never beat the exact optimum...
        assert record["ratio"] <= 1.0 + 1e-9
        # ...and on these small instances it should stay close to it.
        assert record["ratio"] >= 0.5
        # The exhaustive search explores a much larger space.
        assert record["search space"] >= 3
