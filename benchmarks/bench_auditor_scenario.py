"""E8 — AUDITOR scenario: marketplace-wide fairness report."""

from benchmarks.conftest import run_and_report


def test_auditor_scenario(benchmark):
    outcome = run_and_report(benchmark, "E8", size=300, seed=7)
    report_table, anonymization_table = outcome.tables
    # One row per job of the simulated marketplace.
    assert len(report_table) == 4
    assert all(value >= 0.0 for value in report_table.column("unfairness"))
    # The anonymisation follow-up covers k = 1, 2, 5, 10 on the first job.
    assert anonymization_table.column("k") == [1, 2, 5, 10]
