"""E12 — subgroup search vs the single-attribute baseline on planted bias."""

from benchmarks.conftest import run_and_report


def test_subgroup_vs_predefined(benchmark):
    outcome = run_and_report(
        benchmark, "E12", size=400, seed=7, penalties=(-0.1, -0.2, -0.3)
    )
    records = outcome.tables[0].to_records()
    assert len(records) == 3
    for record in records:
        # FaiRank's subgroup search always measures at least as much
        # unfairness as the best single protected attribute (the paper's
        # positioning claim against prior work).
        assert record["QUANTIFY unfairness"] >= record["single-attr unfairness"] - 1e-9
    # The planted penalty grows, and so should the unfairness QUANTIFY finds.
    by_penalty = sorted(records, key=lambda r: r["penalty"], reverse=True)  # -0.1 first
    assert by_penalty[-1]["QUANTIFY unfairness"] >= by_penalty[0]["QUANTIFY unfairness"] - 1e-9
