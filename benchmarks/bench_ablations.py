"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper artefact: these quantify how the reproduction's own knobs
(histogram resolution, minimum partition size, split-selection criterion)
affect what FaiRank measures, on the standard biased synthetic workload.
"""

from repro.experiments.ablations import (
    ablate_bins,
    ablate_min_partition_size,
    ablate_split_criterion,
)
from repro.experiments.workloads import biased_population
from repro.scoring.linear import LinearScoringFunction


def _workload():
    dataset, _ = biased_population(size=300, seed=7, penalty=-0.3)
    function = LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
    return dataset, function


def test_ablation_bins(benchmark):
    dataset, function = _workload()
    table = benchmark.pedantic(ablate_bins, args=(dataset, function), rounds=1, iterations=1)
    print()
    print(table.render())
    normalised = table.column("unfairness (normalised)")
    assert all(0.0 <= value <= 1.0 for value in normalised)


def test_ablation_min_partition_size(benchmark):
    dataset, function = _workload()
    table = benchmark.pedantic(
        ablate_min_partition_size, args=(dataset, function), rounds=1, iterations=1
    )
    print()
    print(table.render())
    values = table.column("unfairness")
    assert values[0] >= values[-1] - 1e-9


def test_ablation_split_criterion(benchmark):
    dataset, function = _workload()
    table = benchmark.pedantic(
        ablate_split_criterion, args=(dataset, function), rounds=1, iterations=1
    )
    print()
    print(table.render())
    records = {record["criterion"]: record for record in table.to_records()}
    algorithm1 = records["Algorithm 1 (local most-unfair attribute)"]["unfairness"]
    random_key = next(key for key in records if key.startswith("random"))
    assert algorithm1 >= records[random_key]["unfairness"] - 1e-9
