"""HTTP front end — concurrent mixed-kind load against one server process.

Boots one :class:`~repro.server.http.FairnessHTTPServer` over a populated
service and drives **>= 64 concurrent HTTP requests spanning every
protocol-v2 kind** at it through :class:`~repro.server.client.HTTPFairnessClient`:

* every warm-cache HTTP response must be **byte-identical**
  (``ServiceResult.canonical()``) to the in-process result for the same
  request — the HTTP layer adds transport, never semantics;
* per-request wall-clock latency percentiles (p50 / p90 / p99 / max) are
  written to ``BENCH_server.json`` (uploaded by CI's bench job) so the
  serving layer's trajectory is tracked per commit.

A second leg benchmarks the *sharded* stack (``repro.shard``): the same 64
concurrent mixed-kind requests against a 3-worker fingerprint-routed fleet
versus a 1-worker baseline behind the identical router, recording cold and
warm latency percentiles to ``BENCH_shard.json`` and requiring the two
deployments' responses to be byte-identical.
"""

from __future__ import annotations

import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List

from repro.errors import ServiceError
from repro.experiments.workloads import crowdsourcing_marketplace, synthetic_population
from repro.scoring.linear import LinearScoringFunction
from repro.server import FairnessHTTPServer, HTTPFairnessClient
from repro.service import (
    AuditRequest,
    BreakdownRequest,
    CompareRequest,
    EndUserRequest,
    FairnessService,
    JobOwnerRequest,
    QuantifyRequest,
    ServiceRequest,
    SweepRequest,
)

from benchmarks.results import REPO_ROOT, write_results

_RESULTS_PATH = REPO_ROOT / "BENCH_server.json"
_SHARD_RESULTS_PATH = REPO_ROOT / "BENCH_shard.json"

#: The acceptance floor: at least this many concurrent in-flight requests.
CONCURRENT_REQUESTS = 64


def build_service() -> FairnessService:
    """A deployment registry mixing datasets, functions and a marketplace."""
    service = FairnessService()
    service.register_dataset(synthetic_population(size=500, seed=7), name="synthetic-500")
    service.register_dataset(synthetic_population(size=200, seed=7), name="synthetic-200")
    service.register_function(
        LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
    )
    service.register_function(
        LinearScoringFunction({"Language Test": 0.8, "Rating": 0.2}, name="language-heavy")
    )
    service.register_marketplace(crowdsourcing_marketplace(size=120, seed=7))
    return service


def mixed_requests(total: int) -> List[ServiceRequest]:
    """``total`` requests cycling through all seven kinds (with duplicates)."""
    cycle: List[ServiceRequest] = [
        QuantifyRequest(dataset="synthetic-500", function="balanced",
                        min_partition_size=5),
        QuantifyRequest(dataset="synthetic-200", function="language-heavy",
                        min_partition_size=5),
        AuditRequest(marketplace="crowdsourcing-sim", min_partition_size=5),
        CompareRequest(dataset="synthetic-200",
                       functions=("balanced", "language-heavy"),
                       min_partition_size=5),
        BreakdownRequest(dataset="synthetic-500", function="balanced"),
        SweepRequest(dataset="synthetic-200", function="balanced", steps=3,
                     min_partition_size=5),
        EndUserRequest(group=(("Gender", "Female"),),
                       marketplaces=("crowdsourcing-sim",),
                       job="Content writing"),
        JobOwnerRequest(marketplace="crowdsourcing-sim", job="Data labelling",
                        sweep_steps=3, min_partition_size=5),
    ]
    return [cycle[index % len(cycle)] for index in range(total)]


def _percentile(sorted_values: List[float], fraction: float) -> float:
    index = min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


def test_concurrent_mixed_kind_http_load():
    service = build_service()
    requests = mixed_requests(CONCURRENT_REQUESTS)
    assert len(requests) >= 64
    assert len({request.kind for request in requests}) == 7

    # In-process reference results; computing them also warms the shared
    # cache, so the HTTP wave below measures warm serving latency.
    reference = [service.execute(request).canonical() for request in requests]

    server = FairnessHTTPServer(service, port=0)
    server.serve_in_background()
    try:
        client = HTTPFairnessClient(server.base_url, timeout=120.0)

        def fire(index: int):
            request = requests[index]
            started = time.perf_counter()
            for attempt in range(3):
                try:
                    result = client._run(request)
                    break
                except (ConnectionResetError, ServiceError) as error:
                    # A reset under the initial 64-way connect burst is
                    # transport noise, not a serving failure (connect-phase
                    # resets surface as the client's "cannot reach" error);
                    # retry counts against the request's measured latency.
                    connect_noise = isinstance(error, ConnectionResetError) or (
                        "cannot reach" in str(error)
                    )
                    if attempt == 2 or not connect_noise:
                        raise
            elapsed = time.perf_counter() - started
            return index, result, elapsed

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CONCURRENT_REQUESTS) as pool:
            outcomes = list(pool.map(fire, range(len(requests))))
        wall_clock = time.perf_counter() - started
    finally:
        server.shutdown()
        server.server_close()

    assert len(outcomes) == len(requests)
    mismatched = [
        requests[index].kind
        for index, result, _ in outcomes
        if result.canonical() != reference[index]
    ]
    assert not mismatched, f"HTTP responses diverged from in-process: {mismatched}"
    assert all(result.ok for _, result, _ in outcomes)

    latencies = sorted(elapsed for _, _, elapsed in outcomes)
    served_by_kind: Dict[str, int] = {}
    for request in requests:
        served_by_kind[request.kind] = served_by_kind.get(request.kind, 0) + 1
    block = {
        "requests": len(requests),
        "concurrency": CONCURRENT_REQUESTS,
        "kinds": served_by_kind,
        "wall_clock_s": round(wall_clock, 4),
        "throughput_rps": round(len(requests) / wall_clock, 1),
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1000, 2),
            "p90": round(_percentile(latencies, 0.90) * 1000, 2),
            "p99": round(_percentile(latencies, 0.99) * 1000, 2),
            "max": round(latencies[-1] * 1000, 2),
        },
        "byte_identical_to_in_process": True,
    }
    write_results(
        _RESULTS_PATH,
        {"server_concurrent_mixed_load": block},
        synthetic_500=500,
        synthetic_200=200,
        marketplace=120,
    )
    print(
        f"\n{len(requests)} concurrent mixed-kind HTTP requests in "
        f"{wall_clock * 1000:.0f} ms ({block['throughput_rps']} rps); "
        f"p50 {block['latency_ms']['p50']} ms, p99 {block['latency_ms']['p99']} ms"
    )


def _latency_block(latencies: List[float]) -> Dict[str, float]:
    ordered = sorted(latencies)
    return {
        "p50": round(_percentile(ordered, 0.50) * 1000, 2),
        "p90": round(_percentile(ordered, 0.90) * 1000, 2),
        "p99": round(_percentile(ordered, 0.99) * 1000, 2),
        "max": round(ordered[-1] * 1000, 2),
    }


def _drive_fleet(snapshot: Path, workers: int, requests) -> Dict[str, object]:
    """Boot a WorkerPool+ShardRouter and fire the concurrent mixed wave.

    Returns cold/warm latency percentiles plus every response's canonical
    form (for the cross-deployment byte-identity check).
    """
    from repro.shard import ShardRouter, WorkerPool
    from repro.snapshot import snapshot_fingerprints

    pool = WorkerPool(snapshot, workers)
    pool.start()
    router = ShardRouter(pool, fingerprints=snapshot_fingerprints(snapshot))
    router.serve_in_background()
    try:
        client = HTTPFairnessClient(router.base_url, timeout=300.0)

        def fire(index: int):
            started = time.perf_counter()
            for attempt in range(3):
                try:
                    result = client._run(requests[index])
                    break
                except (ConnectionResetError, ServiceError) as error:
                    # Same connect-burst noise the single-process bench
                    # retries: a 64-way simultaneous connect can reset on
                    # the client->router hop; retry counts against latency.
                    connect_noise = isinstance(error, ConnectionResetError) or (
                        "cannot reach" in str(error)
                    )
                    if attempt == 2 or not connect_noise:
                        raise
            return index, result, time.perf_counter() - started

        waves: Dict[str, Dict[str, float]] = {}
        canonicals: List[str] = []
        for wave in ("cold", "warm"):
            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=len(requests)) as burst:
                outcomes = list(burst.map(fire, range(len(requests))))
            wall_clock = time.perf_counter() - started
            assert all(result.ok for _, result, _ in outcomes)
            waves[wave] = {
                "wall_clock_s": round(wall_clock, 4),
                "throughput_rps": round(len(requests) / wall_clock, 1),
                "latency_ms": _latency_block(
                    [elapsed for _, _, elapsed in outcomes]
                ),
            }
            canonicals = [
                result.canonical()
                for _, result, _ in sorted(outcomes, key=lambda item: item[0])
            ]
        health = client.health()
        assert health["status"] == "ok"
        return {
            "workers": workers,
            "alive_workers": health["workers"]["alive"],
            **waves,
            "_canonicals": canonicals,
        }
    finally:
        router.shutdown()
        router.server_close()
        pool.stop()


def test_sharded_fleet_vs_single_worker():
    """64 concurrent mixed-kind requests: 3 fingerprint-routed workers vs 1.

    Both fleets boot from one catalog snapshot, so the sharded deployment
    must answer byte-identically to the single-worker baseline; the recorded
    percentiles track what sharding buys (parallel cold computation across
    processes, per-worker cache affinity) and what it costs (a proxy hop on
    the warm path).
    """
    service = build_service()
    requests = mixed_requests(CONCURRENT_REQUESTS)
    assert len({request.kind for request in requests}) == 7

    with tempfile.TemporaryDirectory() as workdir:
        snapshot = Path(workdir) / "deployment.json"
        service.catalog.save(snapshot)
        single = _drive_fleet(snapshot, workers=1, requests=requests)
        sharded = _drive_fleet(snapshot, workers=3, requests=requests)

    mismatched = [
        requests[index].kind
        for index, (left, right) in enumerate(
            zip(single.pop("_canonicals"), sharded.pop("_canonicals"))
        )
        if left != right
    ]
    assert not mismatched, f"sharded responses diverged from 1-worker: {mismatched}"
    assert sharded["alive_workers"] == 3

    block = {
        "requests": len(requests),
        "concurrency": CONCURRENT_REQUESTS,
        "byte_identical_across_fleets": True,
        "single_worker": single,
        "sharded": sharded,
    }
    write_results(
        _SHARD_RESULTS_PATH,
        {"shard_router_concurrent_mixed_load": block},
        synthetic_500=500,
        synthetic_200=200,
        marketplace=120,
    )
    print(
        f"\nsharded {sharded['workers']}-worker fleet: cold p50 "
        f"{sharded['cold']['latency_ms']['p50']} ms / warm p50 "
        f"{sharded['warm']['latency_ms']['p50']} ms vs single-worker cold p50 "
        f"{single['cold']['latency_ms']['p50']} ms / warm p50 "
        f"{single['warm']['latency_ms']['p50']} ms"
    )
