"""E6 — data transparency: k-anonymisation vs measured unfairness."""

from benchmarks.conftest import run_and_report


def test_anonymization(benchmark):
    outcome = run_and_report(benchmark, "E6", size=300, seed=7, k_values=(1, 2, 5, 10, 20))
    global_table, mondrian_table = outcome.tables

    records = {record["k"]: record for record in global_table.to_records()}
    # Expected shape: unfairness measured on anonymised data never exceeds the
    # raw-data measurement, and the strongest anonymisation hides the most.
    assert records[20]["unfairness"] <= records[1]["unfairness"] + 1e-9
    assert records[20]["generalisation intensity"] >= records[2]["generalisation intensity"] - 1e-9

    mondrian_records = {record["k"]: record for record in mondrian_table.to_records()}
    assert mondrian_records[20]["unfairness"] <= mondrian_records[1]["unfairness"] + 1e-9
