"""E2 — Figure 2: regenerate the worked-example partitioning and its histograms."""

from benchmarks.conftest import run_and_report


def test_figure2_partitioning(benchmark):
    outcome = run_and_report(benchmark, "E2")
    figure2, comparison = outcome.tables
    labels = set(figure2.column("partition"))
    assert labels == {
        "Gender=Male, Language=English",
        "Gender=Male, Language=Indian",
        "Gender=Male, Language=Other",
        "Gender=Female",
    }
    assert sum(figure2.column("size")) == 10
    # QUANTIFY must do at least as well as the illustrative partitioning.
    values = dict(zip(comparison.column("partitioning"), comparison.column("unfairness")))
    assert values["QUANTIFY (greedy search)"] >= values["Figure 2 (paper's illustration)"] - 1e-9
