"""Service layer — cold vs. warm vs. batched throughput, and sweep reuse.

Measures what the :mod:`repro.service` subsystem buys on the scalability
workload (E11's synthetic populations):

* **cold vs. warm** — an identical quantify request repeated against a warm
  cache must be served at least 10x faster than the cold computation;
* **batch = serial** — a 16-request mixed batch through the
  :class:`~repro.service.BatchExecutor` must produce byte-identical results
  to serial execution on a fresh service, in the same order;
* **sweep reuse** — a protocol-v2 ``SweepRequest`` over N weight vectors on
  a 10k-row population must share one materialized scoring pass per vector
  via the score-store pool (``store_stats`` records the reuse) while staying
  byte-identical to N serial quantify calls over the same variants.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List

from repro.experiments.workloads import crowdsourcing_marketplace, synthetic_population

from benchmarks.results import REPO_ROOT, write_results
from repro.scoring.linear import LinearScoringFunction
from repro.service import (
    AuditRequest,
    BatchExecutor,
    CompareRequest,
    FairnessService,
    QuantifyRequest,
    ServiceRequest,
    SweepRequest,
)


_RESULTS_PATH = REPO_ROOT / "BENCH_service.json"


def _write_results(payload: Dict[str, object]) -> None:
    """Merge a result block into BENCH_service.json (CI uploads it)."""
    write_results(
        _RESULTS_PATH,
        payload,
        synthetic_300=300,
        synthetic_1000=1_000,
        synthetic_10000=10_000,
        marketplace=200,
    )


def build_service() -> FairnessService:
    """A service over the scalability workload (fresh cache each call)."""
    service = FairnessService()
    service.register_dataset(synthetic_population(size=1_000, seed=7), name="synthetic-1000")
    service.register_dataset(synthetic_population(size=300, seed=7), name="synthetic-300")
    service.register_function(
        LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
    )
    service.register_function(
        LinearScoringFunction({"Language Test": 0.8, "Rating": 0.2}, name="language-heavy")
    )
    service.register_marketplace(crowdsourcing_marketplace(size=200, seed=7))
    return service


def mixed_batch() -> List[ServiceRequest]:
    """A 16-request mixed workload (quantify / audit / compare, with dupes)."""
    requests: List[ServiceRequest] = []
    for function in ("balanced", "language-heavy"):
        for dataset in ("synthetic-1000", "synthetic-300"):
            requests.append(
                QuantifyRequest(dataset=dataset, function=function, min_partition_size=5)
            )
    for aggregation in ("average", "maximum", "variance"):
        requests.append(
            QuantifyRequest(
                dataset="synthetic-300",
                function="balanced",
                aggregation=aggregation,
                min_partition_size=5,
            )
        )
    requests.append(
        QuantifyRequest(
            dataset="synthetic-300",
            function="balanced",
            use_ranks_only=True,
            min_partition_size=5,
        )
    )
    requests.append(AuditRequest(marketplace="crowdsourcing-sim", min_partition_size=5))
    requests.append(
        AuditRequest(
            marketplace="crowdsourcing-sim", job="Content writing", min_partition_size=5
        )
    )
    requests.append(
        QuantifyRequest(
            dataset="synthetic-300",
            function="balanced",
            objective="least_unfair",
            min_partition_size=5,
        )
    )
    requests.append(
        QuantifyRequest(
            dataset="synthetic-300", function="language-heavy", bins=10, min_partition_size=5
        )
    )
    requests.append(
        CompareRequest(
            dataset="synthetic-1000",
            functions=("balanced", "language-heavy"),
            min_partition_size=5,
        )
    )
    requests.append(
        CompareRequest(
            dataset="synthetic-300",
            functions=("balanced", "language-heavy"),
            aggregation="maximum",
            min_partition_size=5,
        )
    )
    # Duplicates: the executor must deduplicate these in flight.
    requests.append(
        QuantifyRequest(dataset="synthetic-1000", function="balanced", min_partition_size=5)
    )
    requests.append(AuditRequest(marketplace="crowdsourcing-sim", min_partition_size=5))
    assert len(requests) == 16
    return requests


def test_cold_vs_warm_cache(benchmark):
    """A warm-cache repeat of an identical request is >= 10x faster than cold."""
    service = build_service()
    request = QuantifyRequest(
        dataset="synthetic-1000", function="balanced", min_partition_size=5
    )

    started = time.perf_counter()
    cold = service.execute(request)
    cold_elapsed = time.perf_counter() - started

    def warm_run():
        return service.execute(
            QuantifyRequest(
                dataset="synthetic-1000", function="balanced", min_partition_size=5
            )
        )

    warm = benchmark.pedantic(warm_run, rounds=5, iterations=1)
    # Best-of-5 so a one-off GC pause cannot distort the warm measurement.
    warm_elapsed = float("inf")
    for _ in range(5):
        started = time.perf_counter()
        warm = warm_run()
        warm_elapsed = min(warm_elapsed, time.perf_counter() - started)

    print()
    print(
        f"cold: {cold_elapsed * 1000:.2f}ms  warm: {warm_elapsed * 1000:.3f}ms  "
        f"speedup: {cold_elapsed / max(warm_elapsed, 1e-9):.0f}x"
    )
    print(f"cache: {service.cache_stats.describe()}")
    print(f"score store: {service.store_stats.describe()}")
    _write_results(
        {
            "cold_vs_warm": {
                "cold_ms": round(cold_elapsed * 1000, 2),
                "warm_ms": round(warm_elapsed * 1000, 3),
                "speedup": round(cold_elapsed / max(warm_elapsed, 1e-9), 1),
                "cache": service.cache_stats.as_dict(),
                "store": service.store_stats.as_dict(),
            }
        }
    )
    assert not cold.cached and warm.cached
    assert cold.canonical() == warm.canonical()
    assert cold_elapsed >= 10 * warm_elapsed, (
        f"warm cache should be >= 10x faster (cold {cold_elapsed:.4f}s, "
        f"warm {warm_elapsed:.4f}s)"
    )


def test_batched_matches_serial(benchmark):
    """A 16-request mixed batch is byte-identical to serial execution."""
    serial_results = BatchExecutor(build_service()).run_serial(mixed_batch())

    def batched_run():
        # A fresh service per round so the batch always starts cold.
        return BatchExecutor(build_service(), max_workers=8).run(mixed_batch())

    batched_results = benchmark.pedantic(batched_run, rounds=1, iterations=1)

    assert len(batched_results) == len(serial_results) == 16
    serial_bytes = [result.canonical() for result in serial_results]
    batched_bytes = [result.canonical() for result in batched_results]
    assert batched_bytes == serial_bytes, "batched results differ from serial execution"
    print()
    print(f"16-request mixed batch: byte-identical to serial ({len(serial_bytes)} results)")
    _write_results({"batch_matches_serial": {"requests": len(serial_bytes), "identical": True}})


def test_batched_throughput_vs_serial(benchmark):
    """Report the wall-clock effect of the thread pool on one cold batch."""
    started = time.perf_counter()
    BatchExecutor(build_service()).run_serial(mixed_batch())
    serial_elapsed = time.perf_counter() - started

    def batched_run():
        return BatchExecutor(build_service(), max_workers=8).run(mixed_batch())

    benchmark.pedantic(batched_run, rounds=1, iterations=1)
    started = time.perf_counter()
    batched_run()
    batched_elapsed = time.perf_counter() - started

    print()
    print(
        f"serial: {serial_elapsed * 1000:.1f}ms  batched(x8): {batched_elapsed * 1000:.1f}ms  "
        f"speedup: {serial_elapsed / max(batched_elapsed, 1e-9):.2f}x"
    )
    _write_results(
        {
            "batch_throughput": {
                "serial_ms": round(serial_elapsed * 1000, 1),
                "batched_ms": round(batched_elapsed * 1000, 1),
                "speedup": round(serial_elapsed / max(batched_elapsed, 1e-9), 2),
            }
        }
    )
    # The batch must never be pathologically slower than serial execution.
    assert batched_elapsed < serial_elapsed * 2.0


SWEEP_WEIGHTS = [
    {"Language Test": alpha, "Rating": 1.0 - alpha}
    for alpha in (0.0, 0.25, 0.5, 0.75, 1.0)
]


def _sweep_service() -> FairnessService:
    """A fresh service over the 10k-row scalability population."""
    service = FairnessService()
    service.register_dataset(
        synthetic_population(size=10_000, seed=7), name="synthetic-10000"
    )
    service.register_function(
        LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
    )
    return service


def test_sweep_shares_scoring_passes(benchmark):
    """A 5-vector SweepRequest on 10k rows reuses the score-store pool.

    Every sweep point materializes its score vector once and serves both the
    summary statistics and the quantify+breakdown kernel from it — the pool
    records a hit per point — and the per-point unfairness values are
    byte-identical to serial quantify calls over the same variants.
    """
    service = _sweep_service()
    request = SweepRequest(
        dataset="synthetic-10000",
        function="balanced",
        weights=tuple(SWEEP_WEIGHTS),
        min_partition_size=5,
    )

    started = time.perf_counter()
    result = service.execute(request)
    sweep_elapsed = time.perf_counter() - started
    assert result.ok and len(result.payload["points"]) == len(SWEEP_WEIGHTS)
    stats = result.store_stats
    assert stats["hits"] > 0, "the sweep must reuse the materialized score-store pool"
    assert stats["scoring_passes"] == len(SWEEP_WEIGHTS), (
        "each weight vector must be scored exactly once across summary + search"
    )

    # Serial reference: fresh service, one quantify_cached per weight vector.
    serial_service = _sweep_service()
    dataset = serial_service.dataset("synthetic-10000")
    base = serial_service.function("balanced")
    started = time.perf_counter()
    serial_values = []
    for index, weights in enumerate(SWEEP_WEIGHTS):
        variant = base.with_weights(name=f"balanced@sweep{index}", **weights)
        served = serial_service.quantify_cached(dataset, variant, min_partition_size=5)
        serial_values.append(served.result.unfairness)
    serial_elapsed = time.perf_counter() - started

    sweep_values = [point["unfairness"] for point in result.payload["points"]]
    assert json.dumps(sweep_values) == json.dumps(serial_values), (
        "sweep results must be byte-identical to serial quantify calls"
    )

    def warm_sweep():
        return service.execute(request)

    warm = benchmark.pedantic(warm_sweep, rounds=3, iterations=1)
    assert warm.cached is True

    print()
    print(
        f"sweep({len(SWEEP_WEIGHTS)} vectors, 10k rows): {sweep_elapsed * 1000:.1f}ms  "
        f"serial quantify: {serial_elapsed * 1000:.1f}ms  "
        f"store: {stats['hits']} hits / {stats['misses']} misses, "
        f"{stats['scoring_passes']} scoring pass(es)"
    )
    _write_results(
        {
            "sweep_reuse": {
                "vectors": len(SWEEP_WEIGHTS),
                "rows": 10_000,
                "sweep_ms": round(sweep_elapsed * 1000, 1),
                "serial_quantify_ms": round(serial_elapsed * 1000, 1),
                "identical_to_serial": True,
                "store": stats,
            }
        }
    )
