"""Benchmark harness: one bench_*.py per table/figure of the paper (see DESIGN.md)."""
