"""E11 — scalability: QUANTIFY runtime vs population size and #attributes.

Tests the paper's claim that the greedy heuristic keeps response time
interactive ("to enable interactive response time, FaiRank relies on an
efficient heuristic algorithm").
"""

from benchmarks.conftest import run_and_report


def test_scalability(benchmark):
    outcome = run_and_report(benchmark, "E11", sizes=(100, 300, 1_000, 3_000), seed=7)
    records = outcome.tables[0].to_records()
    assert len(records) == 12  # 4 sizes x 3 attribute counts
    # Interactivity claim: every configuration stays well under 10 seconds.
    assert all(record["runtime (s)"] < 10.0 for record in records)
    # The measured work (splits evaluated) grows with the number of attributes.
    by_size = {}
    for record in records:
        by_size.setdefault(record["n"], []).append(record)
    for rows in by_size.values():
        rows.sort(key=lambda r: r["#attributes"])
        assert rows[0]["splits evaluated"] <= rows[-1]["splits evaluated"]
