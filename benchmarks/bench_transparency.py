"""E7 — function transparency: true scores vs rank-only histograms."""

from benchmarks.conftest import run_and_report


def test_transparency(benchmark):
    outcome = run_and_report(benchmark, "E7", size=300, seed=7)
    records = outcome.tables[0].to_records()
    assert len(records) == 3
    for record in records:
        assert record["true-score unfairness"] >= 0.0
        assert record["rank-linear unfairness"] >= 0.0
        assert record["rank-exposure unfairness"] >= 0.0
    # Rank-only analysis should agree with the true function on which group
    # is least favoured for at least one of the three jobs.
    assert any(record["same least-favored group"] == "yes" for record in records)
