"""Shared fixtures and helpers for the benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure of the paper (see
DESIGN.md section 2) and times the computation with pytest-benchmark.  Each
benchmark prints the regenerated table so that running

    pytest benchmarks/ --benchmark-only -s

produces both the timing report and the experiment outputs recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import ExperimentOutcome


def run_and_report(benchmark, experiment_id: str, **kwargs) -> ExperimentOutcome:
    """Benchmark one experiment runner and print its tables."""
    from repro.experiments.harness import run_experiment

    outcome = benchmark.pedantic(
        run_experiment, args=(experiment_id,), kwargs=kwargs, rounds=1, iterations=1
    )
    print()
    print(outcome.render())
    return outcome


@pytest.fixture(scope="session")
def medium_marketplace():
    """A medium simulated crowdsourcing marketplace shared by role benches."""
    from repro.experiments.workloads import crowdsourcing_marketplace

    return crowdsourcing_marketplace(size=300, seed=7)
