"""Shared helper for persisting benchmark results as BENCH_*.json files.

Each benchmark module merges its result blocks into one JSON file at the
repository root; CI uploads the emitted files as workflow artifacts so the
perf trajectory is tracked per commit.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

#: The repository root (benchmarks/ lives directly underneath it).
REPO_ROOT = Path(__file__).resolve().parent.parent


def write_results(path: Path, payload: Dict[str, object]) -> None:
    """Merge a block of results into the JSON file at ``path``.

    Merging (rather than overwriting) lets the several tests of one bench
    module contribute their own top-level keys to a single artifact.
    """
    existing: Dict[str, object] = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            existing = {}
    existing.update(payload)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
