"""Shared helper for persisting benchmark results as BENCH_*.json files.

Each benchmark module merges its result blocks into one JSON file at the
repository root; CI uploads the emitted files as workflow artifacts so the
perf trajectory is tracked per commit.  Every write also refreshes two
bookkeeping keys:

* ``meta`` — where the numbers came from: interpreter version, commit,
  UTC timestamp, and any row counts the benchmark passes in;
* ``metrics`` — a snapshot of the process metrics registry
  (:mod:`repro.obs.metrics`), so a benchmark run's request counters and
  latency histograms land in the artifact next to its timings.
"""

from __future__ import annotations

import datetime
import json
import platform
import subprocess
from pathlib import Path
from typing import Dict, Optional

from repro.obs.metrics import get_registry

#: The repository root (benchmarks/ lives directly underneath it).
REPO_ROOT = Path(__file__).resolve().parent.parent


def _commit() -> Optional[str]:
    """The current commit hash, or None outside a usable git checkout."""
    try:
        probe = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    commit = probe.stdout.strip()
    return commit if probe.returncode == 0 and commit else None


def run_meta(**rows: object) -> Dict[str, object]:
    """Provenance for one benchmark run (``rows`` records input sizes)."""
    meta: Dict[str, object] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "commit": _commit(),
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }
    if rows:
        meta["rows"] = dict(rows)
    return meta


def write_results(
    path: Path, payload: Dict[str, object], **rows: object
) -> None:
    """Merge a block of results into the JSON file at ``path``.

    Merging (rather than overwriting) lets the several tests of one bench
    module contribute their own top-level keys to a single artifact.  The
    ``meta`` and ``metrics`` keys are refreshed on every write, so they
    describe the run that last touched the file.
    """
    existing: Dict[str, object] = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            existing = {}
    existing.update(payload)
    existing["meta"] = run_meta(**rows)
    existing["metrics"] = get_registry().snapshot()
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
