"""E3 — Figure 1: the end-to-end engine pipeline (dataset -> panels)."""

from benchmarks.conftest import run_and_report


def test_figure1_pipeline(benchmark):
    outcome = run_and_report(benchmark, "E3", size=300, seed=7)
    table = outcome.tables[0]
    # One panel per pipeline variation (base, second function, filtered,
    # anonymised, ranks-only).
    assert len(table) == 5
    assert all(value >= 0.0 for value in table.column("unfairness"))
