"""AUDITOR scenario: draft a fairness report for a simulated marketplace crawl.

Simulates crawling a TaskRabbit-like platform, audits every job it offers
(including jobs whose scoring function is not disclosed), and shows how the
picture changes when the platform only releases k-anonymised worker data.

Run with:  python examples/auditor_report.py
"""

from __future__ import annotations

from repro.marketplace import MarketplaceCrawler
from repro.roles import Auditor


def main() -> None:
    crawler = MarketplaceCrawler(seed=11)
    marketplace = crawler.crawl("taskrabbit-sim", workers=400)
    print(marketplace.describe())
    print()

    auditor = Auditor(min_partition_size=5)
    report = auditor.audit_marketplace(marketplace)
    print(report.render())
    print()

    # How does limited data transparency change what the auditor sees?
    most_unfair = report.most_unfair_job
    table = auditor.audit_with_anonymization(
        marketplace, most_unfair.job_title, k_values=(1, 2, 5, 10, 20)
    )
    print(table.render())
    print()
    print("Reading: larger k coarsens the protected attributes before the audit, "
          "so the most-unfair subgroup blurs and the measured unfairness drops.")


if __name__ == "__main__":
    main()
