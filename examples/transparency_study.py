"""Transparency study: what can be measured when data or the function is hidden?

Builds a synthetic crowdsourcing population with a planted intersectional
bias, then quantifies unfairness under the four transparency combinations the
paper discusses:

* raw attributes + visible scoring function (full transparency);
* k-anonymised attributes + visible function (limited data transparency);
* raw attributes + only the ranking (limited function transparency);
* k-anonymised attributes + only the ranking (the black-box marketplace).

Run with:  python examples/transparency_study.py
"""

from __future__ import annotations

from repro.experiments.workloads import biased_population
from repro.scoring import LinearScoringFunction
from repro.session import FaiRankEngine, SessionConfig


def main() -> None:
    population, bias = biased_population(size=500, seed=7, penalty=-0.3)
    print(f"Planted bias: {bias.describe()}\n")

    engine = FaiRankEngine()
    engine.register_dataset(population, name="crowdsourcing")
    engine.register_function(
        LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced-job")
    )

    attributes = ("Gender", "Country", "Language", "Ethnicity")
    settings = [
        ("full transparency", dict(anonymity_k=1, use_ranks_only=False)),
        ("5-anonymised data", dict(anonymity_k=5, use_ranks_only=False)),
        ("ranks only", dict(anonymity_k=1, use_ranks_only=True)),
        ("5-anonymised + ranks only", dict(anonymity_k=5, use_ranks_only=True)),
    ]
    for label, overrides in settings:
        config = SessionConfig(
            "crowdsourcing", "balanced-job",
            attributes=attributes, min_partition_size=5, **overrides,
        )
        engine.open_panel(config, panel_id=label)

    table = engine.compare()
    table.title = "Unfairness of the same job under four transparency settings"
    print(table.render())
    print()

    full = engine.panel("full transparency")
    print("Most-unfair partitioning under full transparency "
          f"(unfairness {full.unfairness:.4f}):")
    for label in full.partition_labels():
        box = full.node_box(label)
        print(f"  {label:<60} n={box['size']:<4} mean={box['score_mean']:.3f}")
    print()
    print("Reading: k-anonymisation coarsens the protected attributes, so the planted "
          "subgroup can no longer be isolated and the measured unfairness drops. "
          "Rank-only analysis changes the scale of the EMD (scores are rebuilt from "
          "positions) but still identifies the same least-favoured subgroup.")


if __name__ == "__main__":
    main()
