"""END-USER scenario: decide where to look for a job.

A young female worker compares how two French freelancing platforms (Qapa-like
and MisterTemp'-like simulated crawls) treat her group for the jobs they offer
— the paper's example of "Young professionals in Grenoble" looking at
"installing wood panels" — and decides which platform/job to target.

Run with:  python examples/end_user_decision.py
"""

from __future__ import annotations

from repro.marketplace import MarketplaceCrawler
from repro.roles import EndUser


def main() -> None:
    crawler = MarketplaceCrawler(seed=11)
    qapa = crawler.crawl("qapa-sim", workers=400)
    mistertemp = crawler.crawl("mistertemp-sim", workers=400)

    end_user = EndUser({"Gender": "Female", "Age Band": "18-29"})
    print(f"End-user group: {end_user.group_label()}\n")

    print("How every job on the Qapa-like platform treats this group:")
    print(end_user.compare_jobs(qapa).render())
    print()

    print("The same job ('Installing wood panels') across both platforms:")
    print(end_user.compare_marketplaces([qapa, mistertemp], "Installing wood panels").render())
    print()

    outcome = end_user.assess_job(qapa, "Installing wood panels")
    print("Detail for Qapa / Installing wood panels:")
    print(f"  group size:            {outcome.group_size} of {outcome.population_size} candidates")
    print(f"  group mean score:      {outcome.mean_score:.3f} "
          f"(population {outcome.population_mean_score:.3f}, gap {outcome.score_gap:+.3f})")
    print(f"  mean rank:             {outcome.mean_rank:.1f}")
    print(f"  exposure share:        {outcome.exposure_share:.1%}")
    print(f"  EMD vs rest:           {outcome.emd_vs_rest:.3f}")
    print(f"  flagged as unfair:     {'yes' if outcome.flagged_unfair else 'no'}")


if __name__ == "__main__":
    main()
