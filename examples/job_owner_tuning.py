"""JOB OWNER scenario: tune a job's scoring function towards fairness.

A job owner on a crowdsourcing platform explores re-weightings of their
"Content writing" job's scoring function, sees how the induced unfairness
changes, and picks the fairest variant — the core interaction of the
demonstration's job-owner scenario.

Run with:  python examples/job_owner_tuning.py
"""

from __future__ import annotations

from repro.experiments.workloads import crowdsourcing_marketplace
from repro.roles import JobOwner
from repro.session import render_tree


def main() -> None:
    marketplace = crowdsourcing_marketplace(size=400, seed=7)
    print(marketplace.describe())
    print()

    owner = JobOwner(min_partition_size=5)
    report = owner.explore_job(marketplace, "Content writing", sweep_steps=5)
    print(report.render())
    print()

    fairest = report.fairest
    most_unfair = report.most_unfair
    print(f"Fairest variant:     {fairest.function.describe()} "
          f"(unfairness {fairest.unfairness:.4f})")
    print(f"Most unfair variant: {most_unfair.function.describe()} "
          f"(unfairness {most_unfair.unfairness:.4f})")
    print()

    print("Partitioning tree induced by the most unfair variant (who gets separated):")
    print(render_tree(most_unfair.result.tree, most_unfair.function))


if __name__ == "__main__":
    main()
