"""Quickstart: reproduce the paper's running example end to end.

Loads the Table 1 dataset, scores it with the paper's scoring function,
rebuilds the Figure 2 partitioning, and then lets the greedy QUANTIFY search
find the most unfair partitioning on its own.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import Formulation, Partitioning, quantify, unfairness, unfairness_breakdown
from repro.core.partition import root_partition, split_partition
from repro.data import TABLE1_WEIGHTS, load_example_table1
from repro.scoring import LinearScoringFunction
from repro.session import render_partitioning, render_tree


def main() -> None:
    # 1. The dataset and scoring function of Table 1.
    dataset = load_example_table1()
    function = LinearScoringFunction(TABLE1_WEIGHTS, name="f = 0.3*LanguageTest + 0.7*Rating")
    print("== Table 1: individuals and their scores ==")
    for individual in dataset:
        score = function.score_individual(individual)
        print(f"  {individual.uid:>4}  {individual['Gender']:<7} {individual['Language']:<8} "
              f"{individual['Ethnicity']:<17} f(w) = {score:.3f}")

    # 2. The Figure 2 partitioning: split on Gender, then split Male on Language.
    formulation = Formulation()  # most unfair / average pairwise EMD / 5 bins
    root = root_partition(dataset)
    by_gender = {p.constraint_value("Gender"): p for p in split_partition(root, "Gender")}
    male_by_language = split_partition(by_gender["Male"], "Language")
    figure2 = Partitioning(dataset, tuple(male_by_language) + (by_gender["Female"],))
    print("\n== Figure 2 partitioning ==")
    print(render_partitioning(figure2, function, formulation))
    print(f"unfairness (avg pairwise EMD): {unfairness(figure2, function, formulation):.4f}")

    # 3. Let QUANTIFY search for the most unfair partitioning itself.
    result = quantify(
        dataset, function,
        formulation=formulation,
        attributes=["Gender", "Language", "Country", "Ethnicity"],
    )
    print("\n== QUANTIFY (Algorithm 1) output ==")
    print(render_tree(result.tree, function, formulation))
    print(f"\nunfairness of the returned partitioning: {result.unfairness:.4f}")

    breakdown = unfairness_breakdown(result.partitioning, function, formulation)
    print(f"most favored group:  {breakdown.most_favored}")
    print(f"least favored group: {breakdown.least_favored}")


if __name__ == "__main__":
    main()
